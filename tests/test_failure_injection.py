"""Failure injection: the pipeline under degraded telemetry.

Real deployments see reporting gaps, dead collectors, and stuck agents.
These tests corrupt a copy of the small trace and assert the method
degrades gracefully instead of crashing or emitting garbage — both on the
replay path (:class:`FingerprintPipeline`) and on the live streaming path
(:class:`StreamingCrisisMonitor` behind its quality gate, fed by the
seeded chaos harness).
"""

import copy

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    ReliabilityConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.identification import UNKNOWN
from repro.core.pipeline import FingerprintPipeline
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    EpochUntrusted,
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.core.summary import summary_vectors
from repro.core.thresholds import percentile_thresholds
from repro.telemetry.chaos import ChaosConfig, ChaosInjector
from repro.telemetry.collector import EpochAggregator, EpochQuality
from repro.telemetry.reliability import QuorumPolicy

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)


def corrupted_trace(small_trace, corruption):
    trace = copy.copy(small_trace)
    trace.quantiles = small_trace.quantiles.copy()
    # Experiment-level caches belong to the pristine trace.
    trace.__dict__.pop("_selection_cache", None)
    trace.__dict__.pop("_threshold_cache", None)
    corruption(trace)
    return trace


class TestNaNGaps:
    def test_thresholds_skip_nan_epochs(self, small_trace):
        rng = np.random.default_rng(0)

        def corrupt(trace):
            # 2% of epochs lose one metric's quantiles entirely.
            epochs = rng.choice(trace.n_epochs, trace.n_epochs // 50,
                                replace=False)
            trace.quantiles[epochs, 3, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        hist = trace.quantiles[trace.crisis_free_mask()]
        thresholds = percentile_thresholds(hist)
        assert np.all(np.isfinite(thresholds.cold))
        assert np.all(np.isfinite(thresholds.hot))

    def test_all_nan_metric_rejected(self, small_trace):
        def corrupt(trace):
            trace.quantiles[:, 5, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        hist = trace.quantiles[trace.crisis_free_mask()]
        with pytest.raises(ValueError):
            percentile_thresholds(hist)

    def test_nan_epoch_reads_normal(self, small_trace):
        hist = small_trace.quantiles[small_trace.crisis_free_mask()]
        thresholds = percentile_thresholds(hist)
        epoch = small_trace.quantiles[100].copy()
        epoch[7, :] = np.nan
        summary = summary_vectors(epoch, thresholds)
        np.testing.assert_array_equal(summary[7], 0)


class TestPipelineUnderGaps:
    def test_identification_survives_metric_outage(self, small_trace):
        """A metric going dark mid-trace must not break identification."""
        rng = np.random.default_rng(1)

        def corrupt(trace):
            start = trace.n_epochs // 2
            dark = rng.choice(trace.n_metrics, 2, replace=False)
            for m in dark:
                epochs = rng.choice(
                    np.arange(start, trace.n_epochs),
                    (trace.n_epochs - start) // 10,
                    replace=False,
                )
                trace.quantiles[epochs, m, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        pipe = FingerprintPipeline(trace, CONFIG)
        crises = trace.detected_crises
        for crisis in crises[:4]:
            pipe.observe(crisis)
            pipe.refresh(crisis.detected_epoch)
            pipe.confirm(crisis)
        pipe.update_identification_threshold()
        outcome = pipe.identify(crises[4])
        assert len(outcome.sequence) == 5

    def test_fingerprints_stay_bounded_under_gaps(self, small_trace):
        def corrupt(trace):
            trace.quantiles[::17, 2, :] = np.nan

        trace = corrupted_trace(small_trace, corrupt)
        pipe = FingerprintPipeline(trace, CONFIG)
        crisis = trace.detected_crises[0]
        pipe.observe(crisis)
        pipe.refresh(crisis.detected_epoch)
        known = pipe.confirm(crisis)
        assert np.all(np.abs(known.fingerprint) <= 1.0)
        assert np.all(np.isfinite(known.fingerprint))


RELIABILITY = ReliabilityConfig(coverage_floor=0.5)
FLEET = 24


def _make_monitor(small_trace):
    return StreamingCrisisMonitor(
        n_metrics=small_trace.n_metrics,
        relevant_metrics=list(range(12)),
        config=CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 7,
        reliability=RELIABILITY,
    )


@pytest.fixture(scope="module")
def chaotic_replay(small_trace):
    """Replay the trace through the monitor under a deterministic fault
    schedule: machine dropout (low coverage), NaN bursts (including some
    aimed mid-crisis to hit the identification protocol), counter resets
    (all-zero metric: suspicious but trusted), and quantile inversions.
    """
    monitor = _make_monitor(small_trace)
    frac = small_trace.kpi_violation_fraction.max(axis=1)
    # A few NaN bursts aimed one epoch after a crisis *starts*, so they
    # land inside detected crises, mid-identification-protocol.
    anomalous = np.flatnonzero(frac >= 0.10)
    starts = anomalous[np.flatnonzero(np.diff(anomalous, prepend=-10) > 1)]
    in_crisis = [int(e) + 1 for e in starts[starts > 96 * 7][:6]]

    events_by_epoch = {}
    scheduled = {"dropout": set(), "nan-burst": set(),
                 "counter-reset": set(), "inversion": set()}
    for epoch in range(small_trace.n_epochs):
        q = small_trace.quantiles[epoch].copy()
        quality = None
        if epoch % 97 == 50:
            quality = EpochQuality(epoch=epoch, n_reporting=6,
                                   fleet_size=FLEET)
            scheduled["dropout"].add(epoch)
        if epoch % 131 == 40 or epoch in in_crisis:
            q[3, :] = np.nan
            scheduled["nan-burst"].add(epoch)
        if epoch % 173 == 60:
            q[5, :] = 0.0
            scheduled["counter-reset"].add(epoch)
        if epoch % 211 == 70:
            q[7, :] = [5.0, 3.0, 1.0]
            scheduled["inversion"].add(epoch)
        events_by_epoch[epoch] = monitor.ingest(q, float(frac[epoch]),
                                                quality=quality)
    return monitor, events_by_epoch, scheduled


class TestStreamingChaos:
    """Live-path degradation: the monitor must survive chaos without
    crashing and without emitting confident labels on untrusted epochs."""

    def _flat(self, events_by_epoch, kind):
        return [e for evs in events_by_epoch.values() for e in evs
                if isinstance(e, kind)]

    def test_chaos_stream_survives_and_detects(self, chaotic_replay):
        monitor, events_by_epoch, _ = chaotic_replay
        detections = self._flat(events_by_epoch, CrisisDetected)
        ends = self._flat(events_by_epoch, CrisisEnded)
        assert len(detections) >= 3
        assert len(ends) >= len(detections) - 1
        assert monitor.thresholds is not None

    def test_scheduled_faults_flagged_untrusted(self, chaotic_replay):
        monitor, events_by_epoch, scheduled = chaotic_replay
        untrusted = {e.epoch
                     for e in self._flat(events_by_epoch, EpochUntrusted)}
        for kind in ("dropout", "nan-burst", "inversion"):
            assert scheduled[kind] <= untrusted, kind
        # Counter resets read as all-zero: suspicious (warn) but trusted,
        # so they must NOT trip the gate on their own.
        only_reset = scheduled["counter-reset"] - (
            scheduled["dropout"] | scheduled["nan-burst"]
            | scheduled["inversion"])
        assert only_reset and not (only_reset & untrusted)
        assert monitor.untrusted_epochs == len(untrusted)

    def test_untrusted_reasons_name_the_fault(self, chaotic_replay):
        _, events_by_epoch, scheduled = chaotic_replay
        reasons = {e.epoch: e.reasons
                   for e in self._flat(events_by_epoch, EpochUntrusted)}
        for epoch in scheduled["dropout"]:
            assert "low-coverage" in reasons[epoch]
        for epoch in scheduled["nan-burst"]:
            assert "non-finite" in reasons[epoch]
        for epoch in scheduled["inversion"]:
            assert "quantile-inversion" in reasons[epoch]

    def test_no_confident_label_on_untrusted_epochs(self, chaotic_replay):
        _, events_by_epoch, _ = chaotic_replay
        untrusted = {e.epoch
                     for e in self._flat(events_by_epoch, EpochUntrusted)}
        updates = self._flat(events_by_epoch, IdentificationUpdate)
        on_untrusted = [u for u in updates if u.epoch in untrusted]
        # The mid-crisis NaN bursts guarantee this path is exercised.
        assert on_untrusted
        assert all(u.label == UNKNOWN for u in on_untrusted)
        # And nothing else fires on an untrusted epoch.
        for epoch in untrusted:
            for event in events_by_epoch[epoch]:
                assert isinstance(event,
                                  (EpochUntrusted, IdentificationUpdate))

    def test_thresholds_frozen_during_outage(self, small_trace):
        monitor = _make_monitor(small_trace)
        frac = small_trace.kpi_violation_fraction.max(axis=1)
        for epoch in range(96 * 7):
            monitor.ingest(small_trace.quantiles[epoch], float(frac[epoch]))
        frozen = monitor.thresholds
        assert frozen is not None
        # A long total outage spans what would be a refresh boundary; the
        # refresh countdown must not advance on untrusted epochs.
        bad = EpochQuality(epoch=0, n_reporting=2, fleet_size=FLEET)
        for epoch in range(96 * 7, 96 * 7 + 2 * 96):
            monitor.ingest(small_trace.quantiles[epoch], float(frac[epoch]),
                           quality=bad)
        assert monitor.thresholds is frozen
        # Once telemetry recovers, refreshes resume.
        for epoch in range(96 * 9, 96 * 10 + 1):
            monitor.ingest(small_trace.quantiles[epoch], float(frac[epoch]))
        assert monitor.thresholds is not frozen


class TestChaosHarnessEndToEnd:
    """Chaos harness -> degraded aggregation -> quality-gated monitor."""

    def test_chaotic_fleet_feeds_monitor_without_crashing(self):
        n_machines, n_metrics = 16, 8
        rng = np.random.default_rng(11)
        injector = ChaosInjector(
            ChaosConfig(dropout=0.3, delay=0.05, duplicate=0.05,
                        nan_burst=0.05, counter_reset=0.02, stuck=0.02,
                        seed=23),
            n_machines, n_metrics,
        )
        agg = EpochAggregator(
            [f"m{i}" for i in range(n_metrics)],
            fleet_size=n_machines,
            quorum=QuorumPolicy(min_fraction=0.5),
        )
        monitor = StreamingCrisisMonitor(
            n_metrics=n_metrics,
            relevant_metrics=list(range(4)),
            config=CONFIG,
            threshold_refresh_epochs=10,
            min_history_epochs=20,
            reliability=RELIABILITY,
        )
        untrusted = 0
        for epoch in range(60):
            clean = rng.lognormal(1.0, 0.3, (n_machines, n_metrics))
            for _, report in injector.deliveries(epoch, clean):
                agg.submit(report)
            summary = agg.close_epoch()
            events = monitor.ingest(summary.quantiles, 0.0,
                                    quality=summary.quality)
            untrusted += sum(isinstance(e, EpochUntrusted) for e in events)
        assert injector.events  # chaos actually fired
        assert untrusted == monitor.untrusted_epochs
        assert len(monitor.store) == 60
