"""Tests for the telemetry collection pipeline."""

import numpy as np
import pytest

from repro.telemetry.collector import (
    CollectionPipeline,
    EpochAggregator,
    MachineAgent,
)
from repro.telemetry.quantiles import summarize_epoch

METRICS = ["cpu", "latency", "queue"]


class TestMachineAgent:
    def test_averages_sub_epoch_samples(self):
        agent = MachineAgent("m1", METRICS)
        agent.record("cpu", 10.0)
        agent.record("cpu", 20.0)
        agent.record("latency", 5.0)
        report = agent.flush()
        assert report[0] == 15.0
        assert report[1] == 5.0
        assert np.isnan(report[2])  # queue never reported

    def test_flush_resets(self):
        agent = MachineAgent("m1", METRICS)
        agent.record("cpu", 10.0)
        agent.flush()
        assert np.all(np.isnan(agent.flush()))

    def test_record_all(self):
        agent = MachineAgent("m1", METRICS)
        agent.record_all([1.0, 2.0, 3.0])
        agent.record_all([3.0, 4.0, 5.0])
        np.testing.assert_allclose(agent.flush(), [2.0, 3.0, 4.0])

    def test_validation(self):
        agent = MachineAgent("m1", METRICS)
        with pytest.raises(KeyError):
            agent.record("nope", 1.0)
        with pytest.raises(ValueError):
            agent.record("cpu", float("nan"))
        with pytest.raises(ValueError):
            agent.record_all([1.0])
        with pytest.raises(ValueError):
            MachineAgent("m", [])


class TestEpochAggregator:
    def test_exact_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(1.0, 0.4, (30, 3))
        agg = EpochAggregator(METRICS)
        for row in samples:
            agg.submit(row)
        summary = agg.close_epoch()
        np.testing.assert_array_equal(
            summary.quantiles,
            summarize_epoch(samples, (0.25, 0.50, 0.95)),
        )
        assert summary.n_machines_reporting == 30
        assert summary.epoch == 0
        assert agg.epoch == 1

    def test_sketch_mode_close_to_exact(self):
        rng = np.random.default_rng(1)
        samples = rng.lognormal(1.0, 0.4, (800, 3))
        exact = summarize_epoch(samples, (0.25, 0.50, 0.95))
        agg = EpochAggregator(METRICS, mode="sketch", sketch_eps=0.01)
        for row in samples:
            agg.submit(row)
        summary = agg.close_epoch()
        np.testing.assert_allclose(summary.quantiles, exact, rtol=0.1)

    def test_empty_epoch_rejected(self):
        with pytest.raises(ValueError):
            EpochAggregator(METRICS).close_epoch()

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            EpochAggregator(METRICS, mode="avg")

    def test_report_shape_checked(self):
        agg = EpochAggregator(METRICS)
        with pytest.raises(ValueError):
            agg.submit(np.zeros(2))


class TestCollectionPipeline:
    def test_end_to_end_epoch(self):
        rng = np.random.default_rng(2)
        machines = [f"m{i}" for i in range(20)]
        pipeline = CollectionPipeline(machines, METRICS)
        samples = rng.lognormal(0.5, 0.3, (20, 3))
        for mid, row in zip(machines, samples):
            pipeline.agents[mid].record_all(row)
        summary = pipeline.close_epoch()
        np.testing.assert_array_equal(
            summary.quantiles, summarize_epoch(samples, (0.25, 0.50, 0.95))
        )

    def test_silent_machines_skipped(self):
        machines = ["a", "b", "c"]
        pipeline = CollectionPipeline(machines, METRICS)
        pipeline.agents["a"].record_all([1.0, 1.0, 1.0])
        pipeline.agents["b"].record_all([2.0, 2.0, 2.0])
        summary = pipeline.close_epoch()
        assert summary.n_machines_reporting == 2

    def test_needs_machines(self):
        with pytest.raises(ValueError):
            CollectionPipeline([], METRICS)
