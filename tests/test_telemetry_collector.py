"""Tests for the telemetry collection pipeline."""

import numpy as np
import pytest

from repro.telemetry.collector import (
    CollectionPipeline,
    EpochAggregator,
    MachineAgent,
)
from repro.telemetry.quantiles import summarize_epoch
from repro.telemetry.reliability import QuorumPolicy

METRICS = ["cpu", "latency", "queue"]


class TestMachineAgent:
    def test_averages_sub_epoch_samples(self):
        agent = MachineAgent("m1", METRICS)
        agent.record("cpu", 10.0)
        agent.record("cpu", 20.0)
        agent.record("latency", 5.0)
        report = agent.flush()
        assert report[0] == 15.0
        assert report[1] == 5.0
        assert np.isnan(report[2])  # queue never reported

    def test_flush_resets(self):
        agent = MachineAgent("m1", METRICS)
        agent.record("cpu", 10.0)
        agent.flush()
        assert np.all(np.isnan(agent.flush()))

    def test_record_all(self):
        agent = MachineAgent("m1", METRICS)
        agent.record_all([1.0, 2.0, 3.0])
        agent.record_all([3.0, 4.0, 5.0])
        np.testing.assert_allclose(agent.flush(), [2.0, 3.0, 4.0])

    def test_validation(self):
        agent = MachineAgent("m1", METRICS)
        with pytest.raises(KeyError):
            agent.record("nope", 1.0)
        with pytest.raises(ValueError):
            agent.record_all([1.0])
        with pytest.raises(ValueError):
            MachineAgent("m", [])

    def test_strict_mode_rejects_non_finite(self):
        agent = MachineAgent("m1", METRICS, strict=True)
        with pytest.raises(ValueError):
            agent.record("cpu", float("nan"))
        with pytest.raises(ValueError):
            agent.record_all([1.0, float("inf"), 3.0])

    def test_lenient_mode_drops_only_offending_metrics(self):
        agent = MachineAgent("m1", METRICS)
        agent.record_all([1.0, float("nan"), 3.0])
        agent.record_all([3.0, 4.0, float("inf")])
        assert agent.dropped_samples == 2
        report = agent.flush()
        np.testing.assert_allclose(report, [2.0, 4.0, 3.0])
        assert agent.dropped_samples == 0  # flush resets the counter

    def test_lenient_record_counts_drop(self):
        agent = MachineAgent("m1", METRICS)
        agent.record("cpu", float("nan"))
        agent.record("cpu", 4.0)
        assert agent.dropped_samples == 1
        assert agent.flush()[0] == 4.0


class TestEpochAggregator:
    def test_exact_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(1.0, 0.4, (30, 3))
        agg = EpochAggregator(METRICS)
        for row in samples:
            agg.submit(row)
        summary = agg.close_epoch()
        np.testing.assert_array_equal(
            summary.quantiles,
            summarize_epoch(samples, (0.25, 0.50, 0.95)),
        )
        assert summary.n_machines_reporting == 30
        assert summary.epoch == 0
        assert agg.epoch == 1

    def test_sketch_mode_close_to_exact(self):
        rng = np.random.default_rng(1)
        samples = rng.lognormal(1.0, 0.4, (800, 3))
        exact = summarize_epoch(samples, (0.25, 0.50, 0.95))
        agg = EpochAggregator(METRICS, mode="sketch", sketch_eps=0.01)
        for row in samples:
            agg.submit(row)
        summary = agg.close_epoch()
        np.testing.assert_allclose(summary.quantiles, exact, rtol=0.1)

    def test_empty_epoch_rejected(self):
        with pytest.raises(ValueError):
            EpochAggregator(METRICS).close_epoch()

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            EpochAggregator(METRICS, mode="avg")

    def test_report_shape_checked(self):
        agg = EpochAggregator(METRICS)
        with pytest.raises(ValueError):
            agg.submit(np.zeros(2))


class TestPartialEpochAggregation:
    """Degraded-mode aggregation: partial fleets and per-metric NaN gaps."""

    def _samples(self, n=40):
        rng = np.random.default_rng(5)
        samples = rng.lognormal(1.0, 0.4, (n, 3))
        samples[::7, 1] = np.nan  # one metric missing on some machines
        return samples

    def test_exact_partial_matches_per_metric_quantiles(self):
        samples = self._samples()
        agg = EpochAggregator(METRICS, fleet_size=40)
        for row in samples:
            agg.submit(row)
        summary = agg.close_epoch()
        for m in range(3):
            col = samples[:, m]
            col = col[np.isfinite(col)]
            expected = summarize_epoch(col[:, None], (0.25, 0.50, 0.95))[0]
            np.testing.assert_array_equal(summary.quantiles[m], expected)
        assert summary.quality.dropped_samples == len(samples[::7])

    def test_exact_equals_legacy_when_complete(self):
        rng = np.random.default_rng(6)
        samples = rng.lognormal(1.0, 0.4, (30, 3))
        agg = EpochAggregator(METRICS, fleet_size=30)
        for row in samples:
            agg.submit(row)
        np.testing.assert_array_equal(
            agg.close_epoch().quantiles,
            summarize_epoch(samples, (0.25, 0.50, 0.95)),
        )

    def test_sketch_partial_close_to_exact(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(1.0, 0.4, (800, 3))
        samples[::5, 2] = np.nan
        exact_agg = EpochAggregator(METRICS, fleet_size=800)
        sketch_agg = EpochAggregator(METRICS, mode="sketch",
                                     sketch_eps=0.01, fleet_size=800)
        for row in samples:
            exact_agg.submit(row)
            sketch_agg.submit(row)
        exact = exact_agg.close_epoch()
        sketch = sketch_agg.close_epoch()
        np.testing.assert_allclose(sketch.quantiles, exact.quantiles,
                                   rtol=0.1)
        assert exact.quality.dropped_samples == \
            sketch.quality.dropped_samples == 160

    @pytest.mark.parametrize("mode", ["exact", "sketch"])
    def test_quorum_behavior_agrees_across_modes(self, mode):
        quorum = QuorumPolicy(min_fraction=0.5)
        agg = EpochAggregator(METRICS, mode=mode, fleet_size=10,
                              quorum=quorum)
        # 4 of 10 machines: below the 50% quorum.
        for _ in range(4):
            agg.submit([1.0, 2.0, 3.0])
        summary = agg.close_epoch()
        assert np.all(np.isnan(summary.quantiles))
        assert not summary.quality.quorum_met
        assert summary.quality.coverage == pytest.approx(0.4)
        # 6 of 10: quorum met, finite summary, both modes.
        for _ in range(6):
            agg.submit([1.0, 2.0, 3.0])
        summary = agg.close_epoch()
        assert summary.quality.quorum_met
        assert np.all(np.isfinite(summary.quantiles))

    @pytest.mark.parametrize("mode", ["exact", "sketch"])
    def test_zero_reports_with_known_fleet(self, mode):
        agg = EpochAggregator(METRICS, mode=mode, fleet_size=5)
        summary = agg.close_epoch()
        assert np.all(np.isnan(summary.quantiles))
        assert summary.quality.coverage == 0.0
        assert not summary.quality.quorum_met
        # The aggregator keeps running: the next epoch is unaffected.
        agg.submit([1.0, 2.0, 3.0])
        assert agg.close_epoch().epoch == 1

    def test_all_nan_metric_is_nan_in_both_modes(self):
        for mode in ("exact", "sketch"):
            agg = EpochAggregator(METRICS, mode=mode, fleet_size=3)
            for _ in range(3):
                agg.submit([1.0, np.nan, 3.0])
            q = agg.close_epoch().quantiles
            assert np.all(np.isnan(q[1]))
            assert np.all(np.isfinite(q[[0, 2]]))


class TestCollectionPipeline:
    def test_end_to_end_epoch(self):
        rng = np.random.default_rng(2)
        machines = [f"m{i}" for i in range(20)]
        pipeline = CollectionPipeline(machines, METRICS)
        samples = rng.lognormal(0.5, 0.3, (20, 3))
        for mid, row in zip(machines, samples):
            pipeline.agents[mid].record_all(row)
        summary = pipeline.close_epoch()
        np.testing.assert_array_equal(
            summary.quantiles, summarize_epoch(samples, (0.25, 0.50, 0.95))
        )

    def test_silent_machines_skipped(self):
        machines = ["a", "b", "c"]
        pipeline = CollectionPipeline(machines, METRICS)
        pipeline.agents["a"].record_all([1.0, 1.0, 1.0])
        pipeline.agents["b"].record_all([2.0, 2.0, 2.0])
        summary = pipeline.close_epoch()
        assert summary.n_machines_reporting == 2

    def test_needs_machines(self):
        with pytest.raises(ValueError):
            CollectionPipeline([], METRICS)

    def test_quality_reports_coverage_and_drops(self):
        machines = ["a", "b", "c", "d"]
        pipeline = CollectionPipeline(machines, METRICS)
        pipeline.agents["a"].record_all([1.0, np.nan, 1.0])
        pipeline.agents["b"].record_all([2.0, 2.0, 2.0])
        pipeline.agents["c"].record_all([3.0, 3.0, 3.0])
        summary = pipeline.close_epoch()
        quality = summary.quality
        assert quality.n_reporting == 3
        assert quality.coverage == pytest.approx(3 / 4)
        # one agent-side dropped sample plus one NaN report entry
        assert quality.dropped_samples == 2
        assert quality.n_stale_agents == 1  # "d" missed this epoch

    def test_circuit_breaker_removes_dead_machine_from_fleet(self):
        machines = ["a", "b", "c"]
        pipeline = CollectionPipeline(machines, METRICS, dead_after=2)
        qualities = []
        for _ in range(4):
            pipeline.agents["a"].record_all([1.0, 1.0, 1.0])
            pipeline.agents["b"].record_all([2.0, 2.0, 2.0])
            qualities.append(pipeline.close_epoch().quality)
        # "c" never reports: stale after 1 miss, dead after 2, and from
        # then on the expected fleet shrinks so coverage recovers to 1.
        assert qualities[0].coverage == pytest.approx(2 / 3)
        assert qualities[-1].n_dead_agents == 1
        assert qualities[-1].fleet_size == 2
        assert qualities[-1].coverage == pytest.approx(1.0)
        assert pipeline.health.status("c") == "dead"
        # A report from the dead machine closes the breaker.
        pipeline.agents["a"].record_all([1.0, 1.0, 1.0])
        pipeline.agents["b"].record_all([2.0, 2.0, 2.0])
        pipeline.agents["c"].record_all([3.0, 3.0, 3.0])
        pipeline.close_epoch()
        assert pipeline.health.status("c") == "healthy"
