"""Tests for forecaster threshold calibration."""

import numpy as np
import pytest

from repro.extensions import CrisisForecaster
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def forecaster(small_trace):
    method = FingerprintMethod()
    crises = small_trace.labeled_crises
    method.fit(small_trace, crises)
    fc = CrisisForecaster(
        small_trace, method.thresholds, method.relevant,
        lead_epochs=1, window_epochs=3,
    ).fit(crises[:10])
    return fc, crises


class TestCalibrateThreshold:
    def test_respects_false_alarm_budget(self, forecaster):
        fc, crises = forecaster
        threshold = fc.calibrate_threshold(false_alarm_budget=0.02)
        result = fc.evaluate(crises[10:], threshold=threshold,
                             n_normal=1500)
        # Holdout false alarms should stay near the budget.
        assert result.false_alarm_rate <= 0.10

    def test_smaller_budget_stricter(self, forecaster):
        fc, _ = forecaster
        loose = fc.calibrate_threshold(false_alarm_budget=0.10)
        strict = fc.calibrate_threshold(false_alarm_budget=0.005)
        assert strict >= loose

    def test_threshold_in_unit_interval(self, forecaster):
        fc, _ = forecaster
        t = fc.calibrate_threshold()
        assert 0.0 <= t <= 1.0

    def test_deterministic(self, forecaster):
        fc, _ = forecaster
        a = fc.calibrate_threshold(seed=5)
        b = fc.calibrate_threshold(seed=5)
        assert a == b

    def test_positional_budget_still_works(self, forecaster):
        fc, _ = forecaster
        assert fc.calibrate_threshold(0.10) == fc.calibrate_threshold(
            false_alarm_budget=0.10
        )


class TestDeprecatedCrisesArg:
    def test_old_convention_warns_and_matches(self, forecaster):
        fc, crises = forecaster
        expected = fc.calibrate_threshold(false_alarm_budget=0.02)
        with pytest.warns(DeprecationWarning):
            got = fc.calibrate_threshold(crises[:10],
                                         false_alarm_budget=0.02)
        assert got == expected

    def test_new_convention_does_not_warn(self, forecaster):
        import warnings

        fc, _ = forecaster
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fc.calibrate_threshold(false_alarm_budget=0.02)
