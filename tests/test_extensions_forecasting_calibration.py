"""Tests for forecaster threshold calibration."""

import numpy as np
import pytest

from repro.extensions import CrisisForecaster
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def forecaster(small_trace):
    method = FingerprintMethod()
    crises = small_trace.labeled_crises
    method.fit(small_trace, crises)
    fc = CrisisForecaster(
        small_trace, method.thresholds, method.relevant,
        lead_epochs=1, window_epochs=3,
    ).fit(crises[:10])
    return fc, crises


class TestCalibrateThreshold:
    def test_respects_false_alarm_budget(self, forecaster):
        fc, crises = forecaster
        threshold = fc.calibrate_threshold(crises[:10],
                                           false_alarm_budget=0.02)
        result = fc.evaluate(crises[10:], threshold=threshold,
                             n_normal=1500)
        # Holdout false alarms should stay near the budget.
        assert result.false_alarm_rate <= 0.10

    def test_smaller_budget_stricter(self, forecaster):
        fc, crises = forecaster
        loose = fc.calibrate_threshold(crises[:10],
                                       false_alarm_budget=0.10)
        strict = fc.calibrate_threshold(crises[:10],
                                        false_alarm_budget=0.005)
        assert strict >= loose

    def test_threshold_in_unit_interval(self, forecaster):
        fc, crises = forecaster
        t = fc.calibrate_threshold(crises[:10])
        assert 0.0 <= t <= 1.0

    def test_deterministic(self, forecaster):
        fc, crises = forecaster
        a = fc.calibrate_threshold(crises[:10], seed=5)
        b = fc.calibrate_threshold(crises[:10], seed=5)
        assert a == b
