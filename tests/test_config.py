"""Tests for repro.config."""

import pytest

from repro.config import (
    EPOCHS_PER_DAY,
    FingerprintConfig,
    FingerprintingConfig,
    IdentificationConfig,
    QuantileConfig,
    SelectionConfig,
    ThresholdConfig,
)


class TestQuantileConfig:
    def test_defaults_match_paper(self):
        cfg = QuantileConfig()
        assert cfg.quantiles == (0.25, 0.50, 0.95)
        assert cfg.count == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QuantileConfig(quantiles=())

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            QuantileConfig(quantiles=(0.5, 1.5))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            QuantileConfig(quantiles=(0.95, 0.25))


class TestThresholdConfig:
    def test_defaults_match_paper(self):
        cfg = ThresholdConfig()
        assert cfg.cold_percentile == 2.0
        assert cfg.hot_percentile == 98.0
        assert cfg.window_days == 240

    def test_window_epochs(self):
        assert ThresholdConfig(window_days=2).window_epochs == 2 * EPOCHS_PER_DAY

    def test_rejects_inverted_percentiles(self):
        with pytest.raises(ValueError):
            ThresholdConfig(cold_percentile=98, hot_percentile=2)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ThresholdConfig(window_days=0)


class TestSelectionConfig:
    def test_defaults_match_paper(self):
        cfg = SelectionConfig()
        assert cfg.per_crisis_top_k == 10
        assert cfg.crisis_pool == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"per_crisis_top_k": 0},
            {"n_relevant": 0},
            {"crisis_pool": -1},
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ValueError):
            SelectionConfig(**kwargs)


class TestFingerprintConfig:
    def test_paper_window_is_seven_epochs(self):
        cfg = FingerprintConfig()
        assert (cfg.pre_epochs, cfg.post_epochs) == (2, 4)
        assert cfg.n_epochs == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FingerprintConfig(pre_epochs=-1)


class TestIdentificationConfig:
    def test_five_identification_epochs(self):
        assert IdentificationConfig().n_epochs == 5

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            IdentificationConfig(alpha=1.5)
        with pytest.raises(ValueError):
            IdentificationConfig(alpha=-0.1)


class TestFingerprintingConfig:
    def test_with_replaces_section(self):
        cfg = FingerprintingConfig()
        new = cfg.with_(selection=SelectionConfig(n_relevant=15))
        assert new.selection.n_relevant == 15
        assert cfg.selection.n_relevant == 30  # original untouched
        assert new.thresholds == cfg.thresholds

    def test_frozen(self):
        cfg = FingerprintingConfig()
        with pytest.raises(AttributeError):
            cfg.selection = SelectionConfig()
