"""The kill/recover proof: SIGKILL mid-epoch, bit-identical resumption.

Acceptance criterion of the durable front door: a ``kill -9`` of the
serving process mid-epoch loses no acked report, and after restart +
journal replay the tenant's thresholds and full event history are
**bit-identical** (``assert_array_equal``, event for event) to a server
that was never killed, fed the byte-identical workload.

The servers run as real subprocesses of the ``repro serve`` CLI so the
kill is a true SIGKILL — no atexit handlers, no flush-on-close mercy.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serving.loadgen import ServingClient, run_load

TENANTS = ("tenant-0", "tenant-1")
SERVE_ARGS = [
    "--metrics", "6", "--relevant", "3", "--epoch-minutes", "144",
    "--window-days", "2", "--refresh-epochs", "5",
    "--min-history-epochs", "8", "--checkpoint-every", "4",
    "--seed", "7",
]
LOAD = dict(
    seed=42, n_tenants=len(TENANTS), n_machines=20, n_epochs=18,
    n_metrics=6, crisis_epochs=(12, 13, 14),
)


def start_server(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root)]
        + SERVE_ARGS,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    tag, host, port = line.split()
    assert tag == "SERVING"
    return proc, host, int(port)


def tenant_states(host, port):
    states = {}
    with ServingClient(host, port) as client:
        for tenant in TENANTS:
            states[tenant] = client.request(
                {"op": "state", "tenant": tenant}
            )["state"]
    return states


@pytest.fixture(scope="module")
def reference_states(tmp_path_factory):
    """The uninterrupted run every kill scenario must match exactly."""
    root = tmp_path_factory.mktemp("serving-ref")
    proc, host, port = start_server(root)
    try:
        result = run_load(host, port, **LOAD)
        assert result.rejected == 0
        states = tenant_states(host, port)
    finally:
        proc.kill()
        proc.wait()
    # Sanity: the workload exercised the full crisis machinery.
    kinds = {e["type"] for t in states for e in states[t]["events"]}
    assert {"crisis_detected", "identification", "crisis_ended"} <= kinds
    assert all(states[t]["thresholds"] is not None for t in TENANTS)
    return states


def assert_bit_identical(got, ref):
    for tenant in TENANTS:
        a, b = got[tenant], ref[tenant]
        # Event for event: same types, same epochs, same labels, same
        # float64 distances, in the same order.
        assert a["events"] == b["events"], (
            f"{tenant}: event history diverged after recovery"
        )
        assert a["next_epoch"] == b["next_epoch"]
        assert a["library_labels"] == b["library_labels"]
        assert a["untrusted_epochs"] == b["untrusted_epochs"]
        np.testing.assert_array_equal(
            np.asarray(a["thresholds"]["cold"]),
            np.asarray(b["thresholds"]["cold"]),
        )
        np.testing.assert_array_equal(
            np.asarray(a["thresholds"]["hot"]),
            np.asarray(b["thresholds"]["hot"]),
        )


class TestKillRecover:
    @pytest.mark.parametrize("kill_epoch", [6, 13])
    def test_sigkill_mid_epoch_recovers_bit_identically(
        self, tmp_path, reference_states, kill_epoch
    ):
        """SIGKILL mid-run (once pre-crisis, once mid-crisis)."""
        proc, host, port = start_server(tmp_path)
        killed = {"done": False}

        # Feed epochs until the kill point, then SIGKILL mid-epoch:
        # half of kill_epoch's reports are acked, the rest in flight.
        run_load(host, port, **{**LOAD, "n_epochs": kill_epoch})
        with ServingClient(host, port) as client:
            from repro.serving.loadgen import synthetic_report
            for t in range(LOAD["n_tenants"]):
                for m in range(LOAD["n_machines"] // 2):
                    client.request(synthetic_report(
                        LOAD["seed"], t, kill_epoch, m,
                        LOAD["n_metrics"], LOAD["crisis_epochs"],
                    ))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        killed["done"] = True

        # Restart on the same state directory; replay the journal.
        proc2, host2, port2 = start_server(tmp_path)
        try:
            # The client simply re-offers everything from the kill
            # epoch on; epoch-addressed idempotency absorbs resends of
            # already-acked reports as duplicates.
            result = run_load(
                host2, port2, start_epoch=kill_epoch, **LOAD
            )
            assert result.rejected == 0
            # The half-epoch of pre-kill acked reports was re-offered;
            # every resend was absorbed (idempotent overwrite into the
            # still-open epoch, or duplicate ack if already closed).
            assert result.acked + result.duplicates == (
                (LOAD["n_epochs"] - kill_epoch)
                * LOAD["n_tenants"] * (LOAD["n_machines"] + 1)
            )
            got = tenant_states(host2, port2)
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=15) == 0
        assert_bit_identical(got, reference_states)

    def test_kill_between_epochs_loses_nothing(
        self, tmp_path, reference_states
    ):
        """SIGKILL at an epoch boundary (clean journal, no torn tail)."""
        proc, host, port = start_server(tmp_path)
        run_load(host, port, **{**LOAD, "n_epochs": 10})
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        proc2, host2, port2 = start_server(tmp_path)
        try:
            run_load(host2, port2, start_epoch=10, **LOAD)
            got = tenant_states(host2, port2)
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.wait(timeout=15)
        assert_bit_identical(got, reference_states)

    def test_double_kill_still_converges(self, tmp_path, reference_states):
        """Two SIGKILLs in one run: recovery composes."""
        proc, host, port = start_server(tmp_path)
        run_load(host, port, **{**LOAD, "n_epochs": 5})
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        proc, host, port = start_server(tmp_path)
        run_load(host, port, start_epoch=5, **{**LOAD, "n_epochs": 13})
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        proc, host, port = start_server(tmp_path)
        try:
            run_load(host, port, start_epoch=13, **LOAD)
            got = tenant_states(host, port)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)
        assert_bit_identical(got, reference_states)
