"""Online feature extractor: incremental semantics and snapshots."""

import numpy as np
import pytest

from repro.forecast.features import SCALAR_FEATURES, OnlineFeatureExtractor


def feed(fx, rng, n, violation=0.0, untrusted=False):
    out = None
    for _ in range(n):
        out = fx.observe(
            rng.normal(size=fx.n_cells),
            rng.integers(-1, 2, size=fx.n_cells).astype(np.int8),
            np.ones(fx.n_cells),
            violation,
            untrusted=untrusted,
        )
    return out


class TestWarmup:
    def test_no_vector_until_slope_window_filled(self, rng):
        fx = OnlineFeatureExtractor(n_cells=4, slope_window=5)
        for t in range(4):
            assert feed(fx, rng, 1) is None
        assert feed(fx, rng, 1) is not None

    def test_dim_is_cells_times_three_plus_scalars(self):
        fx = OnlineFeatureExtractor(n_cells=7)
        assert fx.dim == 3 * 7 + len(SCALAR_FEATURES)

    def test_output_is_finite(self, rng):
        fx = OnlineFeatureExtractor(n_cells=4, slope_window=4)
        vec = feed(fx, rng, 10)
        assert np.all(np.isfinite(vec))


class TestSemantics:
    def test_hot_fraction_counts_plus_ones(self, rng):
        fx = OnlineFeatureExtractor(n_cells=4, slope_window=3)
        raw = np.zeros(4)
        scale = np.ones(4)
        summary = np.array([1, 1, 0, -1], dtype=np.int8)
        vec = None
        for _ in range(4):
            vec = fx.observe(raw, summary, scale, 0.0)
        names = dict(zip(SCALAR_FEATURES, vec[3 * 4:]))
        assert names["frac_hot"] == pytest.approx(0.5)
        assert names["frac_cold"] == pytest.approx(0.25)

    def test_transition_rates_on_flip(self):
        fx = OnlineFeatureExtractor(n_cells=2, slope_window=2)
        raw, scale = np.zeros(2), np.ones(2)
        fx.observe(raw, np.array([0, 0], dtype=np.int8), scale, 0.0)
        vec = fx.observe(raw, np.array([1, -1], dtype=np.int8), scale, 0.0)
        names = dict(zip(SCALAR_FEATURES, vec[3 * 2:]))
        assert names["rate_enter_hot"] == pytest.approx(0.5)
        assert names["rate_enter_cold"] == pytest.approx(0.5)

    def test_rising_metric_has_positive_slope(self):
        fx = OnlineFeatureExtractor(n_cells=1, slope_window=4)
        vec = None
        for t in range(6):
            vec = fx.observe(
                np.array([float(t)]), np.zeros(1, np.int8),
                np.ones(1), 0.0,
            )
        slope = vec[2]  # third block is the per-cell slope
        assert slope > 0

    def test_violation_slope_tracks_buildup(self):
        fx = OnlineFeatureExtractor(n_cells=1, slope_window=4)
        vec = None
        for t in range(6):
            vec = fx.observe(
                np.zeros(1), np.zeros(1, np.int8), np.ones(1),
                0.01 * t,
            )
        names = dict(zip(SCALAR_FEATURES, vec[3:]))
        assert names["violation_slope"] > 0


class TestUntrusted:
    def test_untrusted_epoch_returns_none_but_advances_time(self, rng):
        fx = OnlineFeatureExtractor(n_cells=3, slope_window=3)
        feed(fx, rng, 5)
        before = fx.epochs_seen
        out = fx.observe(None, None, None, 0.0, untrusted=True)
        assert out is None
        assert fx.epochs_seen == before + 1

    def test_slopes_nan_aware_across_gap(self, rng):
        fx = OnlineFeatureExtractor(n_cells=2, slope_window=4)
        feed(fx, rng, 6)
        fx.observe(None, None, None, 0.0, untrusted=True)
        vec = feed(fx, rng, 1)
        assert vec is not None and np.all(np.isfinite(vec))


class TestSnapshot:
    def test_round_trip_continues_identically(self, rng):
        fx = OnlineFeatureExtractor(n_cells=3, slope_window=4)
        feed(fx, rng, 7)
        header, arrays = fx.snapshot(prefix="p_")
        clone = OnlineFeatureExtractor.from_snapshot(header, arrays, "p_")
        raw = rng.normal(size=3)
        summary = rng.integers(-1, 2, size=3).astype(np.int8)
        a = fx.observe(raw, summary, np.ones(3), 0.03)
        b = clone.observe(raw, summary, np.ones(3), 0.03)
        assert np.array_equal(a, b)

    def test_snapshot_preserves_warmup_state(self, rng):
        fx = OnlineFeatureExtractor(n_cells=2, slope_window=6)
        feed(fx, rng, 2)  # still warming up
        header, arrays = fx.snapshot(prefix="q_")
        clone = OnlineFeatureExtractor.from_snapshot(header, arrays, "q_")
        assert clone.epochs_seen == fx.epochs_seen
        assert feed(clone, rng, 1) is None
