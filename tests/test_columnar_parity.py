"""Bit-identity proofs: columnar paths vs the per-machine paths.

The columnar refactor (PR 10) is only allowed because every plane has
an exact reference.  This suite pins, with ``assert_array_equal`` (no
tolerances), that:

* :func:`repro.telemetry.quantiles.masked_quantiles` is bit-identical
  to ``summarize_epoch`` on fully-finite matrices and to the
  collector's historical per-quantile loop (``_partial_quantiles``)
  under arbitrary NaN patterns;
* the columnar :class:`EpochAggregator` (block + single-pass close)
  emits the same summaries and quality records as the legacy
  list-append path (``columnar=False``) under arbitrary NaN patterns,
  report orderings, partial fleets, and below-quorum epochs
  (hypothesis-driven);
* the block-backed :class:`ShardFolder` + vectorized
  ``merge_partials`` reproduce the single-process aggregator over any
  sharding of the same report matrix;
* the serving tenant's block-backed pending buffer closes epochs
  bit-identically to the historical dict-of-lists stacking, including
  idempotent duplicate reports and ``report_batch`` vs per-machine
  ``report`` frames.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from numpy.testing import assert_array_equal

from repro.fleet.partial import ShardFolder, merge_partials
from repro.telemetry.collector import EpochAggregator, _partial_quantiles
from repro.telemetry.quantiles import masked_quantiles, summarize_epoch
from repro.telemetry.reliability import QuorumPolicy

QUANTILES = (0.25, 0.50, 0.95)


def _matrix_strategy(max_machines=12, max_metrics=5):
    """Report matrices with arbitrary NaN/inf gaps, plus a seed."""
    return st.tuples(
        st.integers(min_value=1, max_value=max_machines),
        st.integers(min_value=1, max_value=max_metrics),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.0, max_value=0.9),  # gap probability
    )


def _build_matrix(n, m, seed, gap_p):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(10.0, 5.0, size=(n, m))
    gaps = rng.random((n, m)) < gap_p
    matrix[gaps] = np.nan
    # Some gaps arrive as inf/-inf (garbage counters), which every
    # ingestion path drops-and-counts exactly like NaN.
    infs = rng.random((n, m)) < gap_p / 4
    matrix[infs] = np.where(rng.random((n, m)) < 0.5, np.inf, -np.inf)[infs]
    return matrix


class TestMaskedQuantilesKernel:
    @given(_matrix_strategy())
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_partial_quantiles(self, params):
        n, m, seed, gap_p = params
        matrix = _build_matrix(n, m, seed, gap_p)
        # Both kernels require inf pre-masked to NaN, as the ingestion
        # paths guarantee.
        masked = np.where(np.isfinite(matrix), matrix, np.nan)
        assert_array_equal(
            masked_quantiles(masked, QUANTILES),
            _partial_quantiles(masked, QUANTILES),
        )

    @given(_matrix_strategy())
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_summarize_epoch_when_finite(self, params):
        n, m, seed, _ = params
        matrix = _build_matrix(n, m, seed, 0.0)
        assert_array_equal(
            masked_quantiles(matrix, QUANTILES),
            summarize_epoch(matrix, QUANTILES),
        )

    def test_all_nan_metric_is_nan(self):
        matrix = np.array([[1.0, np.nan], [2.0, np.nan]])
        out = masked_quantiles(matrix, QUANTILES)
        assert_array_equal(out[0], [1.0, 1.0, 2.0])
        assert np.isnan(out[1]).all()

    @given(_matrix_strategy())
    @settings(max_examples=100, deadline=None)
    def test_row_order_invariant(self, params):
        n, m, seed, gap_p = params
        matrix = _build_matrix(n, m, seed, gap_p)
        masked = np.where(np.isfinite(matrix), matrix, np.nan)
        perm = np.random.default_rng(seed ^ 0xFFFF).permutation(n)
        assert_array_equal(
            masked_quantiles(masked, QUANTILES),
            masked_quantiles(masked[perm], QUANTILES),
        )


def _close(agg, matrix, per_report, shuffle_seed=None):
    """Feed a matrix into an aggregator and close the epoch."""
    rows = list(matrix)
    if shuffle_seed is not None:
        order = np.random.default_rng(shuffle_seed).permutation(len(rows))
        rows = [rows[i] for i in order]
    if per_report:
        for row in rows:
            agg.submit(row)
    else:
        agg.submit_batch(np.asarray(rows).reshape(-1, matrix.shape[1]))
    return agg.close_epoch()


class TestAggregatorColumnarParity:
    @given(
        _matrix_strategy(),
        st.booleans(),  # batch vs per-report submission
        st.booleans(),  # shuffle the report order
        st.integers(min_value=0, max_value=14),  # quorum min_count
    )
    @settings(max_examples=150, deadline=None)
    def test_columnar_close_bit_identical(
        self, params, batch, shuffle, min_count
    ):
        n, m, seed, gap_p = params
        matrix = _build_matrix(n, m, seed, gap_p)
        names = [f"metric-{j}" for j in range(m)]
        quorum = QuorumPolicy(min_fraction=0.0, min_count=min_count)

        def build(columnar):
            return EpochAggregator(
                names, quantiles=QUANTILES, fleet_size=n + 2,
                quorum=quorum, columnar=columnar,
            )

        legacy = _close(build(False), matrix, per_report=True)
        block = _close(
            build(True), matrix, per_report=not batch,
            shuffle_seed=seed if shuffle else None,
        )
        assert_array_equal(block.quantiles, legacy.quantiles)
        assert block.n_machines_reporting == legacy.n_machines_reporting
        assert block.quality == legacy.quality

    def test_below_quorum_epoch_matches(self):
        names = ["a", "b"]
        quorum = QuorumPolicy(min_fraction=0.9, min_count=1)
        for columnar in (True, False):
            agg = EpochAggregator(
                names, quantiles=QUANTILES, fleet_size=10,
                quorum=quorum, columnar=columnar,
            )
            agg.submit(np.array([1.0, 2.0]))
            summary = agg.close_epoch()
            assert np.isnan(summary.quantiles).all()
            assert not summary.quality.quorum_met
            # The block resets: the next epoch starts clean.
            agg.submit_batch(np.tile([3.0, 4.0], (10, 1)))
            nxt = agg.close_epoch()
            assert nxt.quality.quorum_met
            assert_array_equal(nxt.quantiles, [[3.0] * 3, [4.0] * 3])

    def test_dropped_counter_parity(self):
        matrix = np.array([
            [1.0, np.inf, 3.0],
            [np.nan, 5.0, -np.inf],
            [7.0, 8.0, 9.0],
        ])
        results = {}
        for columnar in (True, False):
            agg = EpochAggregator(
                ["x", "y", "z"], quantiles=QUANTILES,
                fleet_size=3, columnar=columnar,
            )
            agg.submit_batch(matrix)
            results[columnar] = agg.close_epoch()
        assert results[True].quality.dropped_samples == 3
        assert results[True].quality == results[False].quality
        assert_array_equal(
            results[True].quantiles, results[False].quantiles
        )

    def test_block_reuse_across_epochs(self):
        agg = EpochAggregator(["x", "y"], quantiles=QUANTILES, fleet_size=4)
        ref = EpochAggregator(
            ["x", "y"], quantiles=QUANTILES, fleet_size=4, columnar=False
        )
        rng = np.random.default_rng(11)
        for _ in range(5):
            matrix = rng.normal(size=(4, 2))
            matrix[rng.random((4, 2)) < 0.3] = np.nan
            agg.submit_batch(matrix)
            for row in matrix:
                ref.submit(row)
            assert_array_equal(
                agg.close_epoch().quantiles, ref.close_epoch().quantiles
            )


class TestFleetColumnarParity:
    @given(
        _matrix_strategy(max_machines=16),
        st.integers(min_value=1, max_value=4),  # shards
    )
    @settings(max_examples=100, deadline=None)
    def test_sharded_fold_merge_matches_single_process(
        self, params, n_shards
    ):
        n, m, seed, gap_p = params
        matrix = _build_matrix(n, m, seed, gap_p)
        agg = EpochAggregator(
            [f"q{j}" for j in range(m)], quantiles=QUANTILES,
            fleet_size=n, columnar=False,
        )
        for row in matrix:
            agg.submit(row)
        reference = agg.close_epoch().quantiles

        partials = []
        for s, chunk in enumerate(np.array_split(matrix, n_shards)):
            folder = ShardFolder(shard_id=s, n_metrics=m)
            if chunk.shape[0]:
                folder.fold(chunk)
            partials.append(folder.close(epoch=0))
        merged = merge_partials(partials, m, QUANTILES)
        assert_array_equal(merged, reference)

    def test_partial_counts_and_sorted_values(self):
        folder = ShardFolder(shard_id=0, n_metrics=2)
        folder.fold(np.array([[3.0, np.nan], [1.0, 5.0], [2.0, np.inf]]))
        partial = folder.close(epoch=7)
        assert partial.n_reports == 3
        assert partial.dropped == 2
        assert_array_equal(partial.counts, [3, 1])
        # Values are each metric's finite multiset, sorted — the merge
        # re-sorts the cross-shard union, so order within a shard is
        # free to change.
        assert_array_equal(partial.values[0], [1.0, 2.0, 3.0])
        assert_array_equal(partial.values[1], [5.0])

    def test_merge_handles_trailing_empty_metric(self):
        # A zero-count metric at the *end* of the flat layout must not
        # index past the concatenated array.
        folder = ShardFolder(shard_id=0, n_metrics=3)
        folder.fold(np.array([[1.0, 2.0, np.nan], [3.0, 4.0, np.nan]]))
        merged = merge_partials([folder.close(epoch=0)], 3, QUANTILES)
        assert_array_equal(merged[0], [1.0, 1.0, 3.0])
        assert_array_equal(merged[1], [2.0, 2.0, 4.0])
        assert np.isnan(merged[2]).all()
