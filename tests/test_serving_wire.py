"""Wire-format round-trips and typed rejection of malformed frames."""

import pytest

from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    EpochUntrusted,
    IdentificationUpdate,
)
from repro.serving.wire import (
    MalformedFrame,
    decode_frame,
    encode_frame,
    event_from_wire,
    event_to_wire,
    parse_repl_push,
    parse_request,
)


def roundtrip(obj):
    return parse_request(decode_frame(encode_frame(obj)))


class TestRequestRoundtrip:
    def test_report(self):
        req = roundtrip({
            "op": "report", "tenant": "t", "machine": "m1",
            "epoch": 3, "values": [1.5, 2.0], "violation": True,
        })
        assert req == {
            "op": "report", "tenant": "t", "machine": "m1",
            "epoch": 3, "values": [1.5, 2.0], "violation": True,
        }

    def test_float_values_survive_bitwise(self):
        # JSON uses repr (shortest round-trip): float64 is preserved
        # exactly, the foundation of the recovery bit-identity proof.
        import numpy as np

        rng = np.random.default_rng(0)
        values = [float(v) for v in rng.normal(size=64) * 1e17]
        req = roundtrip({
            "op": "report", "tenant": "t", "machine": "m",
            "epoch": 0, "values": values, "violation": False,
        })
        assert all(a == b for a, b in zip(req["values"], values))

    def test_close_epoch_and_diagnose(self):
        assert roundtrip(
            {"op": "close_epoch", "tenant": "t", "epoch": 0}
        )["op"] == "close_epoch"
        assert roundtrip({
            "op": "diagnose", "tenant": "t", "crisis": 1, "label": "db",
        })["label"] == "db"

    def test_extra_keys_are_stripped(self):
        req = roundtrip({
            "op": "close_epoch", "tenant": "t", "epoch": 0,
            "__smuggled": "x",
        })
        assert "__smuggled" not in req


class TestMalformed:
    @pytest.mark.parametrize("line", [
        b"not json at all",
        b"[1, 2, 3]",
        b'"a string"',
        b"\xff\xfe\x00garbage",
        b"{trailing",
    ])
    def test_garbage_lines(self, line):
        with pytest.raises(MalformedFrame):
            parse_request(decode_frame(line))

    @pytest.mark.parametrize("obj", [
        {"op": "nope"},
        {"op": 42},
        {},
        {"op": "report", "tenant": "t"},  # missing fields
        {"op": "report", "tenant": "t", "machine": "m", "epoch": -1,
         "values": [1.0], "violation": False},
        {"op": "report", "tenant": "t", "machine": "m", "epoch": True,
         "values": [1.0], "violation": False},  # bool is not an epoch
        {"op": "report", "tenant": "t", "machine": "m", "epoch": 0,
         "values": [], "violation": False},
        {"op": "report", "tenant": "t", "machine": "m", "epoch": 0,
         "values": [1.0, "x"], "violation": False},
        {"op": "report", "tenant": "t", "machine": "m", "epoch": 0,
         "values": [1.0, True], "violation": False},
        {"op": "report", "tenant": "t", "machine": "", "epoch": 0,
         "values": [1.0], "violation": False},
        {"op": "report", "tenant": "a/b", "machine": "m", "epoch": 0,
         "values": [1.0], "violation": False},  # path-unsafe tenant
        {"op": "report", "tenant": "..", "machine": "m", "epoch": 0,
         "values": [1.0], "violation": False},
        {"op": "close_epoch", "tenant": "t"},
        {"op": "diagnose", "tenant": "t", "crisis": 1, "label": ""},
        {"op": "state"},
    ])
    def test_invalid_requests(self, obj):
        with pytest.raises(MalformedFrame):
            parse_request(obj)


class TestReplicationOps:
    def test_repl_subscribe_roundtrip(self):
        req = roundtrip({
            "op": "repl_subscribe",
            "cursors": {"a": 0, "b": 17},
            "fence": 3,
            "__smuggled": "x",
        })
        assert req == {
            "op": "repl_subscribe",
            "cursors": {"a": 0, "b": 17},
            "fence": 3,
        }

    def test_repl_ack_roundtrip(self):
        req = roundtrip({"op": "repl_ack", "cursors": {"t": 9}})
        assert req == {"op": "repl_ack", "cursors": {"t": 9}}

    def test_fence_and_unquarantine_roundtrip(self):
        assert roundtrip({"op": "fence", "epoch": 2}) == {
            "op": "fence", "epoch": 2,
        }
        assert roundtrip({"op": "unquarantine", "tenant": "t"}) == {
            "op": "unquarantine", "tenant": "t",
        }

    def test_journaled_ops_carry_optional_fence(self):
        req = roundtrip({
            "op": "close_epoch", "tenant": "t", "epoch": 4, "fence": 7,
        })
        assert req["fence"] == 7
        # Absent is absent, not zero: 0 is a valid (pre-failover) token.
        req = roundtrip({"op": "close_epoch", "tenant": "t", "epoch": 4})
        assert "fence" not in req

    @pytest.mark.parametrize("obj", [
        {"op": "repl_subscribe"},  # missing cursors
        {"op": "repl_subscribe", "cursors": [1, 2]},
        {"op": "repl_subscribe", "cursors": {"t": -1}},
        {"op": "repl_subscribe", "cursors": {"t": True}},
        {"op": "repl_subscribe", "cursors": {"": 0}},
        {"op": "repl_subscribe", "cursors": {}, "fence": -1},
        {"op": "repl_subscribe", "cursors": {}, "fence": "3"},
        {"op": "repl_ack", "cursors": {"t": "9"}},
        {"op": "fence"},
        {"op": "fence", "epoch": 0},  # epoch 0 is never minted
        {"op": "fence", "epoch": True},
        {"op": "unquarantine"},
        {"op": "unquarantine", "tenant": "a/b"},
    ])
    def test_invalid_replication_requests(self, obj):
        with pytest.raises(MalformedFrame):
            parse_request(obj)


def seq_rec(seq, tenant="t"):
    return {
        "op": "report", "tenant": tenant, "machine": "m0",
        "epoch": 0, "values": [1.0], "violation": False,
        "seq": seq,
    }


class TestReplPush:
    def test_frames_roundtrip_preserves_seqs(self):
        push = parse_repl_push(decode_frame(encode_frame({
            "op": "repl_frames", "tenant": "t",
            "records": [seq_rec(4), seq_rec(5)],
        })))
        assert push["tenant"] == "t"
        assert [r["seq"] for r in push["records"]] == [4, 5]
        assert all(r["op"] == "report" for r in push["records"])

    def test_heartbeat_roundtrip(self):
        push = parse_repl_push({"op": "repl_heartbeat"})
        assert push == {"op": "repl_heartbeat"}

    @pytest.mark.parametrize("obj", [
        {"op": "report"},  # not a push op
        {"op": "repl_frames", "tenant": "t"},  # missing records
        {"op": "repl_frames", "tenant": "t", "records": []},
        {"op": "repl_frames", "tenant": "t", "records": ["x"]},
        # Record missing its journal seq.
        {"op": "repl_frames", "tenant": "t", "records": [{
            "op": "report", "tenant": "t", "machine": "m0",
            "epoch": 0, "values": [1.0], "violation": False,
        }]},
        # Seq must be a positive integer, not a bool.
        {"op": "repl_frames", "tenant": "t", "records": [seq_rec(0)]},
        {"op": "repl_frames", "tenant": "t",
         "records": [{**seq_rec(1), "seq": True}]},
        # A record for a different tenant smuggled into the frame.
        {"op": "repl_frames", "tenant": "t",
         "records": [seq_rec(1, tenant="other")]},
        # Non-journalable verbs cannot ride the replication stream.
        {"op": "repl_frames", "tenant": "t", "records": [{
            "op": "state", "tenant": "t", "seq": 1}]},
    ])
    def test_invalid_pushes(self, obj):
        with pytest.raises(MalformedFrame):
            parse_repl_push(obj)


class TestEventRoundtrip:
    @pytest.mark.parametrize("event", [
        CrisisDetected(epoch=4, crisis_number=2),
        CrisisEnded(epoch=9, crisis_number=2, duration_epochs=5),
        EpochUntrusted(epoch=3, reasons=("quorum-failed", "low-coverage")),
        IdentificationUpdate(
            epoch=5, crisis_number=2, identification_epoch=1,
            label="overload", distance=0.12345678901234567,
        ),
        IdentificationUpdate(
            epoch=5, crisis_number=2, identification_epoch=0,
            label="unknown crisis", distance=None,
        ),
    ])
    def test_roundtrip_is_identity(self, event):
        wire_obj = event_to_wire(event)
        # ... and through actual JSON bytes, as the server sends it.
        decoded = decode_frame(encode_frame(wire_obj))
        assert event_from_wire(decoded) == event

    def test_unknown_event_type_is_typed(self):
        with pytest.raises(MalformedFrame):
            event_from_wire({"type": "mystery"})


def batch_req(**overrides):
    base = {
        "op": "report_batch", "tenant": "t", "epoch": 2,
        "machines": ["m0", "m1", "m2"],
        "values": [[1.0, 2.0], [3.0, 4.5], [5.0, 6.0]],
        "violations": [False, True, False],
    }
    base.update(overrides)
    return base


class TestReportBatch:
    def test_roundtrip(self):
        req = roundtrip(batch_req(__smuggled="x"))
        assert req == batch_req()

    def test_integer_values_are_canonicalized_to_floats(self):
        req = roundtrip(batch_req(values=[[1, 2], [3, 4], [5, 6]]))
        assert req["values"] == [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
        assert all(
            type(v) is float for row in req["values"] for v in row
        )

    def test_float_values_survive_bitwise(self):
        import numpy as np

        rng = np.random.default_rng(1)
        matrix = (rng.normal(size=(3, 16)) * 1e17).tolist()
        req = roundtrip(batch_req(values=matrix))
        assert req["values"] == matrix

    def test_carries_optional_fence(self):
        assert roundtrip(batch_req(fence=5))["fence"] == 5
        assert "fence" not in roundtrip(batch_req())

    def test_rides_the_replication_stream(self):
        push = parse_repl_push({
            "op": "repl_frames", "tenant": "t",
            "records": [{**batch_req(), "seq": 3}],
        })
        assert push["records"][0]["op"] == "report_batch"

    @pytest.mark.parametrize("obj", [
        batch_req(epoch=-1),
        batch_req(epoch=True),
        batch_req(machines=[]),
        batch_req(machines=["m0", "", "m2"]),
        batch_req(machines=["m0", 1, "m2"]),
        # Duplicate machine ids within one frame are ambiguous (which
        # row wins?) and would break the idempotent-resend accounting.
        batch_req(machines=["m0", "m1", "m0"]),
        # values/violations must match machines one-to-one.
        batch_req(values=[[1.0, 2.0], [3.0, 4.0]]),
        batch_req(violations=[False, True]),
        # Ragged rows are not a matrix.
        batch_req(values=[[1.0, 2.0], [3.0], [5.0, 6.0]]),
        batch_req(values=[[], [], []]),
        batch_req(values=[[1.0, 2.0], [3.0, "x"], [5.0, 6.0]]),
        batch_req(values=[[1.0, 2.0], [3.0, None], [5.0, 6.0]]),
        # Regression (mirrors the single-report rule): bool is an int
        # subclass, but ``true`` is not a metric sample.
        batch_req(values=[[1.0, 2.0], [3.0, True], [5.0, 6.0]]),
        batch_req(values=[[1.0, [2.0]], [3.0, 4.0], [5.0, 6.0]]),
        batch_req(violations=[False, 1, False]),
        batch_req(violations=[False, "true", False]),
    ])
    def test_invalid_batches(self, obj):
        with pytest.raises(MalformedFrame):
            parse_request(obj)


class TestBoolValueRegression:
    """``True``/``False`` pass ``isinstance(v, int)`` — pin that every
    report path rejects them explicitly instead of journaling 1.0/0.0."""

    @pytest.mark.parametrize("values", [[True], [0.5, False], [True, True]])
    def test_single_report_rejects_bools(self, values):
        with pytest.raises(MalformedFrame):
            parse_request({
                "op": "report", "tenant": "t", "machine": "m",
                "epoch": 0, "values": values, "violation": False,
            })

    def test_batch_rejects_all_bool_matrix(self):
        # An all-bool matrix would survive a dtype=float64 cast cleanly
        # (numpy coerces to 1.0/0.0), so the type check must fire first.
        with pytest.raises(MalformedFrame):
            parse_request(batch_req(
                values=[[True, False]] * 3,
            ))


class TestIncidentsOp:
    def test_roundtrip(self):
        req = roundtrip({"op": "incidents", "tenant": "acme", "x": 1})
        assert req == {"op": "incidents", "tenant": "acme"}

    @pytest.mark.parametrize("obj", [
        {"op": "incidents"},
        {"op": "incidents", "tenant": ""},
        {"op": "incidents", "tenant": "a/b"},
        {"op": "incidents", "tenant": ".."},
    ])
    def test_invalid(self, obj):
        with pytest.raises(MalformedFrame):
            parse_request(obj)
