"""DiscoveryEngine integration: monitor wiring, promotion, checkpoints."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.config import DiscoveryConfig
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.streaming import (
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.discovery import (
    DiscoveryEngine,
    OnlineClusterer,
    load_discovery,
    save_discovery,
)
from repro.discovery.eval import EVAL_CONFIG, unlabeled_relevant_metrics
from repro.incidents import IncidentDatabase

DISCOVERY = DiscoveryConfig(radius_scale=1.1)


def _fresh(trace, relevant):
    monitor = StreamingCrisisMonitor(
        n_metrics=trace.n_metrics,
        relevant_metrics=relevant,
        config=EVAL_CONFIG,
        threshold_refresh_epochs=trace.epochs_per_day,
        min_history_epochs=trace.epochs_per_day * 7,
    )
    engine = DiscoveryEngine(DISCOVERY, incidents=IncidentDatabase())
    monitor.attach_discovery(engine)
    return monitor, engine


@pytest.fixture(scope="module")
def replayed(small_trace, tmp_path_factory):
    """One unlabeled replay, checkpointed mid-stream and resumed.

    The original monitor runs the whole trace; a restored copy picks up
    from the mid-stream checkpoint and must emit the *same events* for
    the rest of the stream (the bit-identical-resume acceptance).
    """
    relevant = unlabeled_relevant_metrics(small_trace, EVAL_CONFIG)
    monitor, engine = _fresh(small_trace, relevant)
    frac = small_trace.kpi_violation_fraction.max(axis=1)
    split = int(small_trace.n_epochs * 0.6)

    events = []
    for epoch in range(split):
        events.extend(
            monitor.ingest(small_trace.quantiles[epoch], float(frac[epoch]))
        )
    path = tmp_path_factory.mktemp("discovery") / "monitor.npz"
    save_monitor(monitor, path)
    restored = load_monitor(path, EVAL_CONFIG)

    tail_original = []
    tail_restored = []
    for epoch in range(split, small_trace.n_epochs):
        summary = small_trace.quantiles[epoch]
        violation = float(frac[epoch])
        tail_original.extend(monitor.ingest(summary, violation))
        tail_restored.extend(restored.ingest(summary, violation))
    events.extend(tail_original)
    engine.finalize()
    restored.discovery.finalize()
    return SimpleNamespace(
        trace=small_trace, monitor=monitor, engine=engine,
        restored=restored, events=events,
        tail_original=tail_original, tail_restored=tail_restored,
    )


class TestReplay:
    def test_unlabeled_crises_are_clustered(self, replayed):
        stats = replayed.engine.stats()
        assert stats["attached"] is True
        assert stats["n_fingerprints"] > 0
        assert stats["n_clusters"] > 0
        assert stats["n_pending"] == 0  # finalize drained the buffer

    def test_promotion_round_trip(self, replayed):
        """A promoted cluster becomes a catalog entry the supervised
        path matches: its label lands in the monitor's library, in the
        incident database, and in later identification events."""
        engine = replayed.engine
        labels = set(engine.clusterer.labels().values())
        assert labels, "no cluster cleared the promotion gate"
        library = set(replayed.monitor.library_labels)
        assert labels <= library
        for label in labels:
            assert engine.incidents.by_label(label)
        identified = {
            e.label for e in replayed.events
            if isinstance(e, IdentificationUpdate)
        }
        assert any(lab.startswith("discovered-") for lab in identified)

    def test_promoted_members_carry_the_cluster_label(self, replayed):
        engine = replayed.engine
        by_number = {s.number: s for s in replayed.monitor._library}
        for cid, label in engine.clusterer.labels().items():
            for ref in engine.clusterer.members(cid):
                if ref in by_number:
                    assert by_number[ref].label == label


class TestCheckpoint:
    def test_resume_is_event_for_event_identical(self, replayed):
        assert replayed.tail_restored == replayed.tail_original

    def test_restored_engine_state_is_bit_identical(self, replayed):
        engine = replayed.engine
        other = replayed.restored.discovery
        assert other is not None and other.monitor is replayed.restored
        assert other.clusterer.partition() == engine.clusterer.partition()
        assert other.clusterer.events == engine.clusterer.events
        assert other.clusterer.labels() == engine.clusterer.labels()
        for cid in engine.clusterer.cluster_ids():
            np.testing.assert_array_equal(
                other.clusterer.medoid(cid), engine.clusterer.medoid(cid)
            )

    def test_checkpoint_without_discovery_still_loads(
        self, small_trace, tmp_path
    ):
        monitor = StreamingCrisisMonitor(
            n_metrics=small_trace.n_metrics,
            relevant_metrics=[0, 1, 2],
            config=EVAL_CONFIG,
            threshold_refresh_epochs=small_trace.epochs_per_day,
            min_history_epochs=small_trace.epochs_per_day * 7,
        )
        path = tmp_path / "plain.npz"
        save_monitor(monitor, path)
        assert load_monitor(path, EVAL_CONFIG).discovery is None

    def test_standalone_save_load(self, replayed, tmp_path):
        engine = replayed.engine
        path = tmp_path / "discovery.npz"
        save_discovery(engine, path)
        loaded = load_discovery(path)
        assert loaded.monitor is None  # unattached until attach()
        assert loaded.clusterer.partition() == engine.clusterer.partition()
        assert loaded.clusterer.labels() == engine.clusterer.labels()
        for cid in engine.clusterer.cluster_ids():
            np.testing.assert_array_equal(
                loaded.clusterer.medoid(cid), engine.clusterer.medoid(cid)
            )

    def test_load_rejects_non_discovery_archives(self, replayed, tmp_path):
        path = tmp_path / "monitor.npz"
        save_monitor(replayed.monitor, path)
        with pytest.raises(ValueError):
            load_discovery(path)


class TestRename:
    def build(self):
        engine = DiscoveryEngine(
            DiscoveryConfig(assign_radius=1.0),
            incidents=IncidentDatabase(),
        )
        engine.clusterer = OnlineClusterer(2, engine.config)
        for i, x in enumerate((0.0, 0.2, 0.4)):
            engine.clusterer.ingest(np.array([x, 0.0]), ref=i)
        return engine

    def test_late_diagnosis_renames_not_duplicates(self):
        engine = self.build()
        label = engine.promote_cluster(0)
        assert label == "discovered-0"
        assert len(engine.incidents) == 1

        engine.on_diagnose(1, "db-overload")
        assert engine.clusterer.label(0) == "db-overload"
        assert len(engine.incidents) == 1  # renamed, never duplicated
        assert engine.incidents.by_label("db-overload")
        assert not engine.incidents.by_label("discovered-0")

    def test_discovered_labels_never_trigger_rename(self):
        engine = self.build()
        engine.promote_cluster(0)
        engine.on_diagnose(1, "discovered-99")  # engine-minted prefix
        assert engine.clusterer.label(0) == "discovered-0"

    def test_manual_promote_with_operator_label(self):
        engine = self.build()
        label = engine.promote_cluster(0, label="net-partition")
        assert label == "net-partition"
        assert engine.incidents.by_label("net-partition")
