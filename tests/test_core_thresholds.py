"""Tests for hot/cold threshold estimation (all three methods)."""

import numpy as np
import pytest

from repro.core.thresholds import (
    QuantileThresholds,
    kpi_correlation_thresholds,
    percentile_thresholds,
    timeseries_thresholds,
)


def history(n=1000, n_metrics=5, n_q=3, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(10, 100, (n_metrics, n_q))
    return base[None] * rng.lognormal(0.0, 0.1, (n, n_metrics, n_q))


class TestQuantileThresholds:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            QuantileThresholds(cold=np.zeros((2, 3)), hot=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            QuantileThresholds(cold=np.zeros(3), hot=np.zeros(3))

    def test_rejects_cold_above_hot(self):
        with pytest.raises(ValueError):
            QuantileThresholds(cold=np.ones((1, 1)), hot=np.zeros((1, 1)))

    def test_restrict(self):
        t = percentile_thresholds(history())
        sub = t.restrict(np.array([1, 3]))
        assert sub.n_metrics == 2
        np.testing.assert_array_equal(sub.cold, t.cold[[1, 3]])


class TestPercentileThresholds:
    def test_fraction_outside_matches_percentiles(self):
        h = history(n=5000)
        t = percentile_thresholds(h, 2.0, 98.0)
        outside = np.mean((h < t.cold[None]) | (h > t.hot[None]))
        assert outside == pytest.approx(0.04, abs=0.01)

    def test_wider_percentiles_tighter_band(self):
        h = history()
        narrow = percentile_thresholds(h, 2.0, 98.0)
        wide = percentile_thresholds(h, 10.0, 90.0)
        assert np.all(wide.hot <= narrow.hot)
        assert np.all(wide.cold >= narrow.cold)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile_thresholds(history(), 98.0, 2.0)
        with pytest.raises(ValueError):
            percentile_thresholds(np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            percentile_thresholds(np.zeros((5, 3)))


class TestTimeseriesThresholds:
    def test_contains_typical_values(self):
        h = history(n=2000)
        t = timeseries_thresholds(h)
        median = np.median(h, axis=0)
        assert np.all(median > t.cold)
        assert np.all(median < t.hot)

    def test_more_sigma_wider(self):
        h = history()
        t2 = timeseries_thresholds(h, n_sigma=2.0)
        t4 = timeseries_thresholds(h, n_sigma=4.0)
        assert np.all(t4.hot >= t2.hot)
        assert np.all(t4.cold <= t2.cold)

    @pytest.mark.parametrize("smoothing", [2, 17, 96, 5000])
    def test_cumsum_smoothing_matches_convolution(self, smoothing):
        """The O(n) cumulative-sum trailing mean must agree with the
        per-column convolution it replaced."""
        h = history(n=600, seed=3)

        def reference(history, smoothing_epochs=96, n_sigma=3.0):
            n = history.shape[0]
            w = int(min(max(smoothing_epochs, 2), n))
            kernel = np.ones(w) / w
            flat = history.reshape(n, -1)
            smoothed = np.apply_along_axis(
                lambda s: np.convolve(s, kernel, mode="full")[:n], 0, flat
            )
            counts = np.minimum(np.arange(1, n + 1), w)[:, None]
            smoothed = smoothed * (w / counts)
            resid = flat - smoothed
            sigma = resid.std(axis=0)
            center = smoothed[-1]
            cold = (center - n_sigma * sigma).reshape(history.shape[1:])
            hot = (center + n_sigma * sigma).reshape(history.shape[1:])
            return QuantileThresholds(
                cold=np.minimum(cold, hot), hot=np.maximum(cold, hot)
            )

        got = timeseries_thresholds(h, smoothing_epochs=smoothing)
        expected = reference(h, smoothing_epochs=smoothing)
        np.testing.assert_allclose(got.cold, expected.cold, rtol=1e-9)
        np.testing.assert_allclose(got.hot, expected.hot, rtol=1e-9)


class TestKPICorrelationThresholds:
    def test_finds_separating_threshold(self):
        rng = np.random.default_rng(1)
        n = 600
        anomalous = np.zeros(n, bool)
        anomalous[200:230] = True
        h = rng.normal(50.0, 2.0, (n, 2, 3))
        h[anomalous, 0, :] += 30.0  # metric 0 moves with violations
        t = kpi_correlation_thresholds(h, anomalous)
        # Metric 0's hot threshold separates crisis values from normal.
        assert np.all(t.hot[0] > 52.0)
        assert np.all(t.hot[0] < 80.0)

    def test_requires_mixed_mask(self):
        h = history(n=50)
        with pytest.raises(ValueError):
            kpi_correlation_thresholds(h, np.zeros(50, bool))
        with pytest.raises(ValueError):
            kpi_correlation_thresholds(h, np.ones(50, bool))

    def test_mask_length_checked(self):
        with pytest.raises(ValueError):
            kpi_correlation_thresholds(history(n=50), np.zeros(49, bool))
