"""Tests for the single-crisis dossier."""

import numpy as np
import pytest

from repro.methods import FingerprintMethod
from repro.viz import crisis_dossier


@pytest.fixture(scope="module")
def dossier_inputs(small_trace):
    method = FingerprintMethod()
    method.fit(small_trace, small_trace.labeled_crises)
    return small_trace, method


class TestCrisisDossier:
    def test_contains_core_sections(self, dossier_inputs):
        trace, method = dossier_inputs
        crisis = trace.labeled_crises[0]
        text = crisis_dossier(
            trace, crisis, method.thresholds, method.relevant
        )
        assert f"crisis #{crisis.index}" in text
        assert "KPI impact" in text
        assert "fingerprint" in text
        assert "relevant metrics" in text

    def test_matches_rendered(self, dossier_inputs):
        trace, method = dossier_inputs
        crisis = trace.labeled_crises[1]
        text = crisis_dossier(
            trace, crisis, method.thresholds, method.relevant,
            matches=[("B", 1.23), ("E", 2.5)],
        )
        assert "type B  (distance 1.23)" in text
        assert "type E" in text

    def test_hot_metric_listed(self, dossier_inputs):
        trace, method = dossier_inputs
        crisis = trace.labeled_crises[0]
        text = crisis_dossier(
            trace, crisis, method.thresholds, method.relevant
        )
        assert "HOT" in text or "COLD" in text

    def test_max_metrics_truncates(self, dossier_inputs):
        trace, method = dossier_inputs
        crisis = trace.labeled_crises[0]
        text = crisis_dossier(
            trace, crisis, method.thresholds, method.relevant,
            max_metrics=2,
        )
        assert "more" in text

    def test_undetected_rejected(self, dossier_inputs):
        trace, method = dossier_inputs
        crisis = trace.labeled_crises[0]
        import copy

        ghost = copy.copy(crisis)
        ghost.detected_epoch = None
        with pytest.raises(ValueError):
            crisis_dossier(trace, ghost, method.thresholds, method.relevant)
