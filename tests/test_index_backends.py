"""Edge-case and contract tests for the fingerprint index backends."""

import numpy as np
import pytest

from repro.index import (
    BruteForceIndex,
    KDTreeIndex,
    LSHIndex,
    backend_names,
    create_index,
    load_index,
    save_index,
)

BACKENDS = ["brute", "kdtree", "lsh"]


def make_index(backend, dim, **kwargs):
    if backend == "lsh":
        kwargs.setdefault("seed", 7)
    return create_index(backend, dim, **kwargs)


@pytest.fixture()
def cloud(rng):
    return rng.normal(size=(200, 12))


class TestRegistry:
    def test_all_backends_registered(self):
        assert backend_names() == sorted(BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_index("annoy", 4)

    def test_classes_match_names(self):
        assert isinstance(create_index("brute", 3), BruteForceIndex)
        assert isinstance(create_index("kdtree", 3), KDTreeIndex)
        assert isinstance(create_index("lsh", 3), LSHIndex)


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCases:
    def test_empty_index(self, backend):
        index = make_index(backend, 5)
        assert len(index) == 0
        assert index.query(np.zeros(5), k=3) == []
        assert index.query_radius(np.zeros(5), 10.0) == []
        assert index.ids() == []

    def test_single_element(self, backend):
        index = make_index(backend, 3)
        id = index.add(np.array([1.0, 2.0, 3.0]), payload="A")
        hits = index.query(np.array([1.0, 2.0, 3.0]), k=5)
        assert len(hits) == 1
        assert hits[0].id == id
        assert hits[0].distance == 0.0
        assert hits[0].payload == "A"

    def test_duplicate_vectors_tie_break_on_id(self, backend):
        index = make_index(backend, 4)
        vec = np.array([1.0, 1.0, 1.0, 1.0])
        for _ in range(5):
            index.add(vec)
        hits = index.query(vec, k=3)
        # Equal distances resolve to the lowest ids, ascending.
        assert [h.id for h in hits] == [0, 1, 2]
        assert all(h.distance == 0.0 for h in hits)

    def test_dimension_mismatch_rejected(self, backend):
        index = make_index(backend, 4)
        with pytest.raises(ValueError):
            index.add(np.zeros(5))
        index.add(np.zeros(4))
        with pytest.raises(ValueError):
            index.query(np.zeros(3), k=1)
        with pytest.raises(ValueError):
            index.query_radius(np.zeros(5), 1.0)

    def test_non_finite_rejected(self, backend):
        index = make_index(backend, 2)
        with pytest.raises(ValueError):
            index.add(np.array([1.0, np.nan]))

    def test_bad_k_and_radius_rejected(self, backend):
        index = make_index(backend, 2)
        index.add(np.zeros(2))
        with pytest.raises(ValueError):
            index.query(np.zeros(2), k=0)
        with pytest.raises(ValueError):
            index.query_radius(np.zeros(2), -1.0)

    def test_remove_then_query(self, backend, cloud):
        index = make_index(backend, cloud.shape[1])
        index.add_batch(cloud)
        target = cloud[13]
        assert index.query(target, k=1)[0].id == 13
        index.remove(13)
        assert 13 not in index
        assert len(index) == len(cloud) - 1
        hits = index.query(target, k=5)
        assert 13 not in {h.id for h in hits}
        with pytest.raises(KeyError):
            index.remove(13)

    def test_remove_all_then_query(self, backend):
        index = make_index(backend, 2)
        ids = index.add_batch(np.eye(2))
        for id in ids:
            index.remove(id)
        assert len(index) == 0
        assert index.query(np.zeros(2), k=1) == []

    def test_update_moves_vector(self, backend):
        index = make_index(backend, 2)
        a = index.add(np.array([0.0, 0.0]))
        index.add(np.array([5.0, 5.0]))
        index.update(a, np.array([9.0, 9.0]))
        hit = index.query(np.array([9.0, 9.0]), k=1)[0]
        assert hit.id == a
        assert hit.distance == 0.0

    def test_duplicate_id_rejected(self, backend):
        index = make_index(backend, 2)
        index.add(np.zeros(2), id=4)
        with pytest.raises(ValueError):
            index.add(np.ones(2), id=4)

    def test_snapshot_restore_roundtrip(self, backend, cloud, tmp_path):
        index = make_index(backend, cloud.shape[1])
        index.add_batch(cloud, payloads=[f"L{i % 3}" for i in range(len(cloud))])
        index.remove(7)
        path = tmp_path / "index.npz"
        save_index(index, path)
        back = load_index(path)
        assert type(back) is type(index)
        assert len(back) == len(index)
        assert back.ids() == index.ids()
        query = cloud[3] + 0.01
        original = [(h.id, h.distance, h.payload) for h in index.query(query, k=8)]
        restored = [(h.id, h.distance, h.payload) for h in back.query(query, k=8)]
        assert restored == original

    def test_snapshot_restore_empty(self, backend, tmp_path):
        index = make_index(backend, 6)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        back = load_index(path)
        assert len(back) == 0
        assert back.dim == 6
        assert back.query(np.zeros(6), k=1) == []

    def test_radius_query_inclusive(self, backend):
        index = make_index(backend, 1)
        index.add(np.array([0.0]))
        index.add(np.array([1.0]))
        index.add(np.array([3.0]))
        hits = [h.id for h in index.query_radius(np.array([0.0]), 1.0)]
        if backend == "lsh":
            # Approximate: may miss within-radius points, never invents.
            assert 0 in hits and set(hits) <= {0, 1}
        else:
            assert hits == [0, 1]


@pytest.mark.parametrize("backend", ["kdtree", "lsh"])
class TestExactAgreement:
    def test_knn_matches_brute(self, backend, rng):
        # kdtree is exact; lsh is seeded and near-exact on clustered data —
        # cluster the points so every bucket holds the query's neighborhood.
        centers = rng.normal(size=(10, 8)) * 5.0
        points = np.concatenate(
            [c + rng.normal(scale=0.05, size=(40, 8)) for c in centers]
        )
        exact = make_index("brute", 8, dtype=np.float64)
        exact.add_batch(points)
        other = make_index(backend, 8)
        other.add_batch(points)
        for center in centers:
            query = center + rng.normal(scale=0.05, size=8)
            truth = [h.id for h in exact.query(query, k=5)]
            got = [h.id for h in other.query(query, k=5)]
            if backend == "kdtree":
                assert got == truth
            else:
                assert len(set(got) & set(truth)) >= 4

    def test_radius_matches_brute(self, rng, backend):
        points = rng.normal(size=(150, 6))
        exact = make_index("brute", 6, dtype=np.float64)
        exact.add_batch(points)
        other = make_index(backend, 6)
        other.add_batch(points)
        query = points[0]
        truth = {h.id for h in exact.query_radius(query, 1.5)}
        got = {h.id for h in other.query_radius(query, 1.5)}
        if backend == "kdtree":
            assert got == truth
        else:
            assert got <= truth  # LSH may miss, never invents


class TestBruteExactness:
    def test_bit_identical_to_python_scan(self, rng):
        points = rng.normal(size=(500, 30))
        index = BruteForceIndex(30, dtype=np.float64, block_rows=64)
        index.add_batch(points)
        query = rng.normal(size=30)
        scan = sorted(
            (float(np.linalg.norm(query - p)), i)
            for i, p in enumerate(points)
        )[:10]
        hits = index.query(query, k=10)
        assert [(h.distance, h.id) for h in hits] == scan

    def test_batched_matches_single(self, rng):
        points = rng.normal(size=(200, 10))
        index = BruteForceIndex(10, dtype=np.float64)
        index.add_batch(points)
        queries = rng.normal(size=(7, 10))
        batched = index.query_batch(queries, k=4)
        for query, hits in zip(queries, batched):
            assert hits == index.query(query, k=4)

    def test_growth_preserves_contents(self):
        index = BruteForceIndex(2, dtype=np.float64)
        for i in range(100):  # forces several doublings
            index.add(np.array([float(i), 0.0]))
        hit = index.query(np.array([57.2, 0.0]), k=1)[0]
        assert hit.id == 57


class TestLSHDeterminism:
    def test_same_seed_same_results(self, rng):
        points = rng.normal(size=(300, 8))
        queries = rng.normal(size=(5, 8))
        results = []
        for _ in range(2):
            index = LSHIndex(8, seed=123)
            index.add_batch(points)
            results.append(
                [[(h.id, h.distance) for h in index.query(q, k=5)]
                 for q in queries]
            )
        assert results[0] == results[1]

    def test_incremental_add_after_hashing(self, rng):
        points = rng.normal(size=(100, 4))
        index = LSHIndex(4, seed=5)
        index.add_batch(points)
        index.query(points[0], k=1)  # freezes width, hashes everything
        new = np.array([50.0, 50.0, 50.0, 50.0])
        new_id = index.add(new)
        assert index.query(new, k=1)[0].id == new_id
