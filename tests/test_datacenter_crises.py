"""Tests for crisis types, instances, effect fields, and schedules."""

import numpy as np
import pytest

from repro.datacenter.crises import (
    CRISIS_TYPES,
    TABLE1_LABELED_COUNTS,
    CrisisInstance,
    CrisisSchedule,
    EffectFields,
    build_effect_fields,
)
from repro.telemetry.epochs import EpochClock


def make_instance(code="A", start=100, duration=6, machines=None, seed=3):
    return CrisisInstance(
        type_code=code,
        start_epoch=start,
        duration_epochs=duration,
        intensity=1.0,
        machines=np.arange(5) if machines is None else machines,
        seed=seed,
    )


class TestCrisisTypes:
    def test_registry_covers_table1(self):
        assert sorted(CRISIS_TYPES) == list("ABCDEFGHIJ")
        assert sum(TABLE1_LABELED_COUNTS.values()) == 19
        assert TABLE1_LABELED_COUNTS["B"] == 9

    @pytest.mark.parametrize("code", sorted(CRISIS_TYPES))
    def test_each_type_perturbs_fields(self, code):
        inst = make_instance(code, machines=np.arange(4))
        fields = build_effect_fields([inst], 100, 10, 8)
        assert not fields.is_neutral()

    def test_neutral_outside_crisis(self):
        inst = make_instance("A")
        fields = build_effect_fields([inst], 0, 50, 8)  # before the crisis
        assert fields.is_neutral()

    def test_chunking_invariance(self):
        """Splitting generation into chunks must not change the effects."""
        inst = make_instance("I", start=10, duration=8)
        whole = build_effect_fields([inst], 0, 30, 8)
        part1 = build_effect_fields([inst], 0, 15, 8)
        part2 = build_effect_fields([inst], 15, 15, 8)
        np.testing.assert_allclose(
            whole.load_mult, np.vstack([part1.load_mult, part2.load_mult])
        )
        np.testing.assert_allclose(
            whole.alert_add, np.vstack([part1.alert_add, part2.alert_add])
        )

    def test_jitter_deterministic_per_instance(self):
        inst = make_instance("B", seed=42)
        f1 = build_effect_fields([inst], 95, 20, 8)
        f2 = build_effect_fields([inst], 95, 20, 8)
        np.testing.assert_array_equal(f1.backpressure, f2.backpressure)

    def test_jitter_differs_between_instances(self):
        a = make_instance("B", seed=1)
        b = make_instance("B", seed=2)
        fa = build_effect_fields([a], 95, 20, 8)
        fb = build_effect_fields([b], 95, 20, 8)
        assert not np.array_equal(fa.backpressure, fb.backpressure)

    def test_routing_error_skews_both_ways(self):
        inst = make_instance("H", machines=np.array([0, 1]))
        fields = build_effect_fields([inst], 100, 10, 8)
        hot = fields.load_mult[5, :2]
        cold = fields.load_mult[5, 2:]
        assert np.all(hot > 1.5)
        assert np.all(cold < 0.7)

    def test_power_cycle_has_outage_then_surge(self):
        inst = make_instance("I", duration=10)
        fields = build_effect_fields([inst], 100, 10, 8)
        assert np.all(fields.load_mult[0] < 0.1)  # outage
        assert np.all(fields.load_mult[-1] > 1.5)  # surge


class TestCrisisInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_instance(start=-1)
        with pytest.raises(ValueError):
            make_instance(duration=0)

    def test_overlaps(self):
        inst = make_instance(start=10, duration=5)
        assert inst.overlaps(0, 11)
        assert inst.overlaps(14, 20)
        assert not inst.overlaps(15, 20)
        assert not inst.overlaps(0, 10)


class TestEffectFields:
    def test_neutral_initially(self):
        assert EffectFields(4, 3).is_neutral()

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            EffectFields(0, 3)


class TestCrisisSchedule:
    def make_schedule(self, seed=0):
        return CrisisSchedule.paper_timeline(
            n_machines=20,
            clock=EpochClock(),
            rng=np.random.default_rng(seed),
            warmup_days=10,
            bootstrap_days=50,
            labeled_days=60,
            n_bootstrap=8,
        )

    def test_counts(self):
        sched = self.make_schedule()
        labeled = [c for c in sched if c.labeled]
        boot = [c for c in sched if not c.labeled]
        assert len(labeled) == 19
        assert len(boot) == 8

    def test_labeled_type_distribution(self):
        sched = self.make_schedule()
        from collections import Counter

        counts = Counter(c.type_code for c in sched if c.labeled)
        assert counts == TABLE1_LABELED_COUNTS

    def test_no_overlap_and_sorted(self):
        sched = self.make_schedule(seed=5)
        starts = [c.start_epoch for c in sched]
        assert starts == sorted(starts)
        for a, b in zip(sched.instances, sched.instances[1:]):
            assert b.start_epoch >= a.end_epoch

    def test_warmup_is_clean(self):
        sched = self.make_schedule()
        warmup_end = 10 * EpochClock().per_day
        assert all(c.start_epoch >= warmup_end for c in sched)

    def test_business_hours_placement(self):
        sched = self.make_schedule(seed=7)
        per_day = EpochClock().per_day
        for c in sched:
            hour = (c.start_epoch % per_day) * 24 / per_day
            assert 9 <= hour < 17

    def test_in_range(self):
        sched = self.make_schedule()
        first = sched.instances[0]
        found = sched.in_range(first.start_epoch, first.start_epoch + 1)
        assert first in found

    def test_crisis_epochs_mask(self):
        sched = self.make_schedule()
        n = 130 * EpochClock().per_day
        mask = sched.crisis_epochs_mask(n)
        total = sum(c.duration_epochs for c in sched)
        assert mask.sum() == total

    def test_too_dense_schedule_rejected(self):
        with pytest.raises(ValueError):
            CrisisSchedule.paper_timeline(
                n_machines=20,
                clock=EpochClock(),
                rng=np.random.default_rng(0),
                warmup_days=2,
                bootstrap_days=3,
                labeled_days=5,
                n_bootstrap=5,
            )
