"""Tests for repro.telemetry.epochs."""

import pytest

from repro.telemetry.epochs import (
    EpochClock,
    epoch_of_minute,
    epochs_per_day,
    minutes_of_epoch,
)


class TestEpochsPerDay:
    def test_default_fifteen_minutes(self):
        assert epochs_per_day() == 96

    def test_other_lengths(self):
        assert epochs_per_day(30) == 48
        assert epochs_per_day(60) == 24

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            epochs_per_day(7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            epochs_per_day(0)


class TestConversions:
    def test_epoch_of_minute(self):
        assert epoch_of_minute(0) == 0
        assert epoch_of_minute(14) == 0
        assert epoch_of_minute(15) == 1
        assert epoch_of_minute(1440) == 96

    def test_minutes_of_epoch(self):
        assert minutes_of_epoch(0) == 0
        assert minutes_of_epoch(4) == 60

    def test_roundtrip(self):
        for epoch in (0, 1, 95, 96, 1000):
            assert epoch_of_minute(minutes_of_epoch(epoch)) == epoch

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            epoch_of_minute(-1)
        with pytest.raises(ValueError):
            minutes_of_epoch(-5)


class TestEpochClock:
    def test_day_of(self):
        clock = EpochClock()
        assert clock.day_of(0) == 0
        assert clock.day_of(95) == 0
        assert clock.day_of(96) == 1

    def test_time_of_day(self):
        clock = EpochClock()
        assert clock.time_of_day(0) == 0.0
        assert clock.time_of_day(48) == 0.5
        assert clock.time_of_day(96) == 0.0

    def test_span_epochs(self):
        clock = EpochClock()
        assert clock.span_epochs(0) == 0
        assert clock.span_epochs(3) == 288

    def test_invalid_epoch_length_rejected(self):
        with pytest.raises(ValueError):
            EpochClock(epoch_minutes=13)

    def test_negative_inputs_rejected(self):
        clock = EpochClock()
        with pytest.raises(ValueError):
            clock.day_of(-1)
        with pytest.raises(ValueError):
            clock.span_epochs(-1)
