"""Batched ingestion parity: ``report_batch`` vs per-machine ``report``.

The batched wire path must be an encoding change, not a semantic one:
feeding the same machine vectors through ``report_batch`` frames has to
leave a tenant in a bit-identical state to per-machine ``report``
frames — same summaries, same events, same recovery — because batch
frames share the journal, the epoch-addressed idempotency rule, and the
columnar pending block with the single-report path.
"""

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.serving.loadgen import (
    ServingClient,
    run_load,
    synthetic_batch,
    synthetic_report,
)
from repro.serving.server import IngestServer
from repro.serving.tenant import APPLIED, BAD_EPOCH, DUPLICATE, TenantRuntime


def small_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144, window_days=2,
        threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=3, seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


def machine_rows(epoch, n_machines=6, n_metrics=4):
    rng = np.random.default_rng([5, epoch])
    values = rng.normal(10.0, 2.0, size=(n_machines, n_metrics))
    return (
        [f"m{i}" for i in range(n_machines)],
        [[float(v) for v in row] for row in values],
        [i % 3 == 0 for i in range(n_machines)],
    )


def drive(rt, n_epochs, batched, batch_size=None):
    """Journal + apply the same machine rows, batched or one-by-one."""
    for epoch in range(n_epochs):
        machines, values, violations = machine_rows(epoch)
        if batched:
            size = batch_size or len(machines)
            recs = [
                {
                    "op": "report_batch", "epoch": epoch,
                    "machines": machines[lo : lo + size],
                    "values": values[lo : lo + size],
                    "violations": violations[lo : lo + size],
                }
                for lo in range(0, len(machines), size)
            ]
        else:
            recs = [
                {
                    "op": "report", "machine": m, "epoch": epoch,
                    "values": v, "violation": f,
                }
                for m, v, f in zip(machines, values, violations)
            ]
        recs.append({"op": "close_epoch", "epoch": epoch})
        events = []
        for rec in recs:
            rt.journal.append(rec)
            status, evs = rt.apply(rec)
            assert status == APPLIED
            events.extend(evs)
    return events


class TestTenantBatchParity:
    @pytest.mark.parametrize("batch_size", [None, 2])
    def test_state_bit_identical(self, tmp_path, batch_size):
        single = TenantRuntime("a", small_cfg(), tmp_path)
        batched = TenantRuntime("b", small_cfg(), tmp_path)
        drive(single, 12, batched=False)
        drive(batched, 12, batched=True, batch_size=batch_size)
        s, b = single.state(), batched.state()
        s.pop("tenant"), b.pop("tenant")
        # Fewer journal records ⇒ different sequence numbers; every
        # piece of *derived* state must still be identical.
        s.pop("applied_seq"), b.pop("applied_seq")
        assert s == b  # thresholds, events, pending — everything

    def test_stale_batch_is_duplicate_noop(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        drive(rt, 2, batched=True)
        machines, values, violations = machine_rows(0)
        resend = {
            "op": "report_batch", "epoch": 0, "machines": machines,
            "values": values, "violations": violations,
        }
        before = rt.state()
        status, events = rt.apply(resend)
        assert status == DUPLICATE and events == []
        assert rt.state() == before

    def test_future_batch_is_rejected(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        machines, values, violations = machine_rows(0)
        assert rt.classify({
            "op": "report_batch", "epoch": 5, "machines": machines,
            "values": values, "violations": violations,
        }) == BAD_EPOCH

    def test_batch_overwrites_earlier_singles(self, tmp_path):
        # Last write wins per machine, exactly as with repeated
        # ``report`` frames for the same machine in one epoch.
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        rt.apply({
            "op": "report", "machine": "m0", "epoch": 0,
            "values": [9.0, 9.0, 9.0, 9.0], "violation": True,
        })
        rt.apply({
            "op": "report_batch", "epoch": 0, "machines": ["m0", "m1"],
            "values": [[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]],
            "violations": [False, False],
        })
        assert rt.pending["m0"] == ([1.0, 2.0, 3.0, 4.0], False)
        assert sorted(rt.pending) == ["m0", "m1"]

    def test_recovery_replays_batch_frames(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        drive(rt, 8, batched=True, batch_size=2)
        # Leave a half-open epoch so recovery must rebuild the pending
        # block from both checkpoint extra and journal batch frames.
        machines, values, violations = machine_rows(8)
        rec = {
            "op": "report_batch", "epoch": 8,
            "machines": machines[:3], "values": values[:3],
            "violations": violations[:3],
        }
        rt.journal.append(rec)
        rt.apply(rec)
        expected = rt.state()
        recovered = TenantRuntime.recover("t", small_cfg(), tmp_path)
        assert recovered.state() == expected


LOAD = dict(
    seed=5, n_tenants=2, n_machines=10, n_epochs=12, n_metrics=4,
    crisis_epochs=(9, 10),
)


def serving_cfg():
    return ServingConfig(
        n_metrics=4, n_relevant=2, epoch_minutes=144, window_days=2,
        threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=4, idle_timeout_s=2.0, seed=11,
    )


class TestServerBatchParity:
    def test_batched_load_matches_unbatched_state(self, tmp_path):
        states = {}
        for mode, batch_size in (("single", None), ("batched", 4)):
            srv = IngestServer(serving_cfg(), tmp_path / mode)
            srv.start()
            try:
                result = run_load(
                    "127.0.0.1", srv.port, batch_size=batch_size, **LOAD
                )
                assert result.rejected == 0
                # Acks cover every machine report plus one close per
                # tenant-epoch, batched or not.
                expected = LOAD["n_epochs"] * LOAD["n_tenants"] * (
                    LOAD["n_machines"] + 1
                )
                assert result.acked + result.duplicates == expected
                with ServingClient("127.0.0.1", srv.port) as client:
                    states[mode] = {}
                    for t in range(LOAD["n_tenants"]):
                        state = client.request(
                            {"op": "state", "tenant": f"tenant-{t}"}
                        )["state"]
                        # Batching journals fewer records, so sequence
                        # numbers differ; all derived state must not.
                        state.pop("applied_seq")
                        states[mode][t] = state
            finally:
                srv.close()
        assert states["batched"] == states["single"]

    def test_batch_ack_carries_coverage(self, tmp_path):
        srv = IngestServer(serving_cfg(), tmp_path)
        srv.start()
        try:
            with ServingClient("127.0.0.1", srv.port) as client:
                frame = synthetic_batch(5, 0, 0, range(7), 4)
                resp = client.request(frame)
                assert resp["ok"] and resp["n"] == 7
                close = {
                    "op": "close_epoch", "tenant": "tenant-0", "epoch": 0,
                }
                assert client.request(close)["ok"]
                # The stale resend is acked as a duplicate covering the
                # whole frame — no partial re-application.
                resp = client.request(frame)
                assert resp["ok"] and resp["status"] == "duplicate"
                assert resp["n"] == 7
                # Single reports still ack without the field.
                rep = synthetic_report(5, 0, 1, 0, 4)
                assert "n" not in client.request(rep)
        finally:
            srv.close()

    def test_server_restart_replays_batched_journal(self, tmp_path):
        cfg = serving_cfg()
        srv = IngestServer(cfg, tmp_path)
        srv.start()
        try:
            run_load("127.0.0.1", srv.port, batch_size=3, **LOAD)
            with ServingClient("127.0.0.1", srv.port) as client:
                before = client.request(
                    {"op": "state", "tenant": "tenant-0"}
                )["state"]
        finally:
            srv.close()
        srv2 = IngestServer(cfg, tmp_path)
        srv2.start()
        try:
            with ServingClient("127.0.0.1", srv2.port) as client:
                after = client.request(
                    {"op": "state", "tenant": "tenant-0"}
                )["state"]
        finally:
            srv2.close()
        assert after == before
