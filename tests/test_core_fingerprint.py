"""Tests for epoch and crisis fingerprints."""

import numpy as np
import pytest

from repro.config import FingerprintConfig
from repro.core.fingerprint import (
    CrisisFingerprint,
    crisis_fingerprint,
    epoch_fingerprints,
)
from repro.core.thresholds import QuantileThresholds


def thresholds(n_metrics, n_q=3):
    return QuantileThresholds(
        cold=np.full((n_metrics, n_q), -1.0),
        hot=np.full((n_metrics, n_q), 1.0),
    )


def quantile_trace(n_epochs=30, n_metrics=6, n_q=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 0.3, (n_epochs, n_metrics, n_q))


class TestEpochFingerprints:
    def test_shape_restricts_to_relevant(self):
        q = quantile_trace()
        out = epoch_fingerprints(q, thresholds(6), np.array([0, 3]))
        assert out.shape == (30, 2 * 3)

    def test_hot_cold_encoding(self):
        q = np.zeros((1, 2, 3))
        q[0, 0, :] = 5.0  # hot
        q[0, 1, :] = -5.0  # cold
        out = epoch_fingerprints(q, thresholds(2), np.array([0, 1]))
        np.testing.assert_array_equal(out[0], [1, 1, 1, -1, -1, -1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            epoch_fingerprints(np.zeros((2, 3)), thresholds(2),
                               np.array([0]))


class TestCrisisFingerprint:
    def test_window_is_pre_through_post(self):
        q = quantile_trace()
        q[10:15] = 10.0  # crisis epochs hot
        fp = crisis_fingerprint(q, thresholds(6), np.arange(6),
                                detection_epoch=10)
        # Window 8..14: 2 normal-ish epochs + 5 hot epochs averaged.
        assert fp.n_epochs == 7
        assert np.all(fp.vector <= 1.0)
        assert fp.vector.mean() > 0.5

    def test_partial_window(self):
        q = quantile_trace()
        fp = crisis_fingerprint(q, thresholds(6), np.arange(6),
                                detection_epoch=10, end_epoch=10)
        assert fp.n_epochs == 3  # -2, -1, 0

    def test_clipping_at_trace_start(self):
        q = quantile_trace()
        fp = crisis_fingerprint(q, thresholds(6), np.arange(6),
                                detection_epoch=0)
        assert fp.n_epochs == 5  # 0..4 only

    def test_empty_window_raises(self):
        q = quantile_trace()
        with pytest.raises(ValueError):
            crisis_fingerprint(q, thresholds(6), np.arange(6),
                               detection_epoch=10, end_epoch=5)

    def test_values_in_unit_interval(self):
        q = quantile_trace(seed=3) * 10
        fp = crisis_fingerprint(q, thresholds(6), np.arange(6),
                                detection_epoch=15)
        assert np.all(np.abs(fp.vector) <= 1.0)

    def test_metadata_carried(self):
        q = quantile_trace()
        fp = crisis_fingerprint(q, thresholds(6), np.array([1, 2]),
                                detection_epoch=10, label="B", crisis_id=4)
        assert fp.label == "B"
        assert fp.crisis_id == 4
        np.testing.assert_array_equal(fp.metric_indices, [1, 2])

    def test_custom_config_window(self):
        q = quantile_trace()
        cfg = FingerprintConfig(pre_epochs=0, post_epochs=1)
        fp = crisis_fingerprint(q, thresholds(6), np.arange(6),
                                detection_epoch=10, config=cfg)
        assert fp.n_epochs == 2


class TestCrisisFingerprintValidation:
    def test_rejects_out_of_range_vector(self):
        with pytest.raises(ValueError):
            CrisisFingerprint(vector=np.array([2.0]),
                              metric_indices=np.array([0]))

    def test_rejects_2d_vector(self):
        with pytest.raises(ValueError):
            CrisisFingerprint(vector=np.zeros((2, 2)),
                              metric_indices=np.array([0]))
