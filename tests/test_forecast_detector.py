"""Two-stage detector: CV fitting, ROC calibration, catalog matching."""

import numpy as np
import pytest

from repro.core.identification import UNKNOWN
from repro.forecast.detector import TwoStageDetector


def toy_data(rng, n=200, dim=6, sep=3.0):
    """Linearly separable-ish two-class feature rows."""
    X = rng.normal(size=(n, dim))
    y = (rng.random(n) < 0.5).astype(float)
    X[:, 0] += sep * y
    return X, y


@pytest.fixture()
def fitted(rng):
    X, y = toy_data(rng)
    det = TwoStageDetector(horizon_epochs=3, false_alarm_budget=0.05)
    det.fit(X, y, cv_folds=4, seed=1)
    det.calibrate(det.score(X), y)
    return det, X, y


class TestStageOne:
    def test_unfitted_scoring_raises(self, rng):
        det = TwoStageDetector()
        with pytest.raises(RuntimeError, match="not fitted"):
            det.score(rng.normal(size=(3, 5)))

    def test_cv_table_covers_lambda_path(self, fitted):
        det, _, _ = fitted
        assert len(det.cv_table) >= 4
        assert det.lam in [row["lam"] for row in det.cv_table]
        assert det.model is not None and det.is_fitted

    def test_separable_classes_score_apart(self, fitted):
        det, X, y = fitted
        scores = det.score(X)
        assert scores[y == 1].mean() > scores[y == 0].mean() + 0.2

    def test_single_row_scoring(self, fitted):
        det, X, _ = fitted
        assert det.score(X[0]).shape == (1,)

    def test_needs_both_classes(self, rng):
        det = TwoStageDetector()
        X = rng.normal(size=(20, 3))
        with pytest.raises(ValueError, match="positive and negative"):
            det.fit(X, np.ones(20))

    def test_calibration_respects_budget(self, fitted):
        det, X, y = fitted
        neg = det.score(X)[y == 0]
        fpr = np.mean(neg >= det.alarm_threshold)
        assert fpr <= 0.05 + 1e-9
        assert det.calibration_fpr <= 0.05 + 1e-9


class TestStageTwo:
    def test_no_catalog_reports_unknown(self, rng):
        det = TwoStageDetector()
        label, distance = det.identify(rng.normal(size=4))
        assert label == UNKNOWN and distance is None

    def test_exact_match_identified(self, rng):
        det = TwoStageDetector()
        vecs = np.vstack([np.eye(4)[i % 4] * (1 + i) for i in range(8)])
        labels = [f"T{i % 4}" for i in range(8)]
        det.set_catalog(vecs, labels, alpha=0.5)
        label, distance = det.identify(vecs[2])
        assert label == "T2" and distance == 0.0

    def test_far_query_is_dont_know_when_gated(self):
        det = TwoStageDetector()
        # Two same-label pairs so the threshold estimator has positives.
        vecs = np.array(
            [[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]]
        )
        det.set_catalog(vecs, ["A", "A", "B", "B"], alpha=0.5)
        if det.match_threshold is not None:
            label, _ = det.identify(np.array([100.0, -100.0]))
            assert label == UNKNOWN

    def test_empty_catalog_rejected(self):
        det = TwoStageDetector()
        with pytest.raises(ValueError):
            det.set_catalog(np.empty((0, 3)), [])


class TestSnapshot:
    def test_round_trip_scores_identically(self, fitted, rng):
        det, X, _ = fitted
        det.set_catalog(
            np.vstack([np.eye(3), np.eye(3)]),
            ["A", "B", "C", "A", "B", "C"],
            alpha=0.5,
        )
        header, arrays = det.snapshot(prefix="d_")
        clone = TwoStageDetector.from_snapshot(header, arrays, "d_")
        probe = rng.normal(size=(5, X.shape[1]))
        assert np.array_equal(det.score(probe), clone.score(probe))
        assert clone.alarm_threshold == det.alarm_threshold
        assert clone.identify(np.eye(3)[1]) == det.identify(np.eye(3)[1])

    def test_unfitted_round_trip(self):
        det = TwoStageDetector(horizon_epochs=2, false_alarm_budget=0.1)
        header, arrays = det.snapshot()
        clone = TwoStageDetector.from_snapshot(header, arrays)
        assert not clone.is_fitted
        assert clone.horizon_epochs == 2
        assert clone.catalog_size == 0
