"""Tests for the four crisis-representation methods."""

import numpy as np
import pytest

from repro.methods import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
    KPIMethod,
    SignaturesMethod,
)


@pytest.fixture(scope="module")
def crises(small_trace):
    return small_trace.labeled_crises


@pytest.fixture(scope="module")
def fingerprints(small_trace, crises):
    m = FingerprintMethod()
    m.fit(small_trace, crises)
    return m


@pytest.fixture(scope="module")
def signatures(small_trace, crises):
    m = SignaturesMethod()
    m.fit(small_trace, crises)
    return m


class TestFingerprintMethod:
    def test_unfitted_raises(self, crises):
        with pytest.raises(RuntimeError):
            FingerprintMethod().vector(crises[0])

    def test_relevant_metric_count(self, fingerprints):
        assert len(fingerprints.relevant) == 15  # paper's offline setting

    def test_vector_dimension(self, fingerprints, crises):
        v = fingerprints.vector(crises[0])
        assert v.shape == (15 * 3,)
        assert np.all(np.abs(v) <= 1.0)

    def test_truncation_changes_vector(self, fingerprints, crises):
        full = fingerprints.vector(crises[0])
        partial = fingerprints.vector(crises[0], n_epochs=3)
        assert full.shape == partial.shape

    def test_distance_symmetric(self, fingerprints, crises):
        d_ab = fingerprints.pair_distance(crises[0], crises[1])
        d_ba = fingerprints.pair_distance(crises[1], crises[0])
        assert d_ab == pytest.approx(d_ba)

    def test_same_type_closer_than_different(self, fingerprints, crises):
        labels = [c.label for c in crises]
        D = fingerprints.distance_matrix(crises)
        same, diff = [], []
        for i in range(len(crises)):
            for j in range(i + 1, len(crises)):
                (same if labels[i] == labels[j] else diff).append(D[i, j])
        assert np.mean(same) < np.mean(diff)

    def test_discrimination_pairs_counts(self, fingerprints, crises):
        d, is_same = fingerprints.discrimination_pairs(crises)
        n = len(crises)
        assert len(d) == n * (n - 1) // 2
        assert is_same.sum() >= 36  # nine B crises alone give 36 pairs


class TestAllMetricsMethod:
    def test_uses_every_metric(self, small_trace, crises):
        m = AllMetricsFingerprintMethod()
        m.fit(small_trace, crises)
        assert len(m.relevant) == small_trace.n_metrics
        v = m.vector(crises[0])
        assert v.shape == (small_trace.n_metrics * 3,)


class TestKPIMethod:
    def test_vector_is_violation_fractions(self, small_trace, crises):
        m = KPIMethod()
        m.fit(small_trace, crises)
        v = m.vector(crises[0])
        assert v.shape == (3,)
        assert np.all((v >= 0) & (v <= 1))

    def test_crisis_vector_larger_than_normal(self, small_trace, crises):
        m = KPIMethod()
        m.fit(small_trace, crises)
        assert m.vector(crises[0]).max() >= 0.10  # detection rule


class TestSignaturesMethod:
    def test_model_per_crisis(self, signatures, crises):
        assert set(signatures.models) == {c.index for c in crises}

    def test_model_has_top_k_features(self, signatures, crises):
        model = signatures.models[crises[0].index]
        assert 1 <= len(model.feature_indices) <= 10

    def test_signature_entries_ternary_after_averaging(self, signatures,
                                                       crises):
        model = signatures.models[crises[0].index]
        sig = signatures.signature(crises[0], model)
        assert np.all(np.abs(sig) <= 1.0)
        # Entries outside the model's features are exactly zero.
        outside = np.setdiff1d(np.arange(sig.size), model.feature_indices)
        np.testing.assert_array_equal(sig[outside], 0.0)

    def test_own_model_attributes_own_crisis(self, signatures, crises):
        """Under its own model, a crisis's signature is mostly +1.

        Uses a step-onset crisis (not type B, whose gradual buildup keeps
        early window epochs unattributed by design)."""
        crisis = next(c for c in crises if c.label != "B")
        model = signatures.models[crisis.index]
        sig = signatures.signature(crisis, model)
        active = sig[model.feature_indices]
        assert active.mean() > 0.2

    def test_pair_distance_uses_known_model(self, signatures, crises):
        # Distance to a crisis with no prebuilt model builds one on demand.
        d = signatures.pair_distance(crises[0], crises[1])
        assert d >= 0.0
