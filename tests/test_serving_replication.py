"""Replication, fencing, and failover proofs.

Three layers of evidence that the hot-standby tier keeps the serving
guarantees of PR 6 across a *node* loss:

* **Convergence** — a standby tailing the primary's journal stream ends
  with byte-for-byte identical tenant state (same apply code, same
  record stream, same sequence numbers), resumes from its cursor after
  restarts, and survives seeded partition/link-drop/delayed-ack chaos.
* **Split brain** — a displaced primary is sealed by the first write
  carrying the new fencing epoch: its supervisor sheds everything as
  ``fenced``, its journals raise
  :class:`~repro.serving.fencing.StaleFencingToken` before a byte is
  written, and the seal survives a process restart.
* **Failover** — the headline proof: SIGKILL the primary subprocess
  mid-epoch, promote the standby, re-offer the deterministic workload,
  and the promoted node's thresholds and event history are
  **bit-identical** (``assert_array_equal``, event for event) to a
  primary that was never killed.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.serving import wire
from repro.serving.failover import FailoverController
from repro.serving.fencing import StaleFencingToken
from repro.serving.loadgen import ServingClient, run_load
from repro.serving.server import IngestServer
from repro.serving.supervisor import FENCED
from repro.telemetry.chaos import ServingChaosConfig, ServingChaosInjector

LOCAL = "127.0.0.1"


def repl_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144, window_days=2,
        threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=4, max_inflight=256,
        idle_timeout_s=0.6, restart_base_delay=0.01,
        restart_max_delay=0.05, heartbeat_interval_s=0.1,
        repl_ack_timeout_s=2.0, seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


LOAD = dict(
    seed=42, n_tenants=2, n_machines=8, n_epochs=10, n_metrics=4,
    crisis_epochs=(6, 7),
)


@pytest.fixture
def fleet(tmp_path):
    """Factory for in-process servers sharing one temp directory."""
    servers = []

    def make(name, standby_of=None, chaos=None, **over):
        srv = IngestServer(
            repl_cfg(**over), tmp_path / name,
            standby_of=standby_of, repl_chaos=chaos,
        )
        srv.start()
        servers.append(srv)
        return srv

    yield make
    for srv in servers:
        srv.close(checkpoint=False)


def applied_seqs(server):
    with server._lock:
        out = {}
        for tenant in server.supervisor.tenants():
            slot = server.supervisor.peek(tenant)
            if slot is not None and slot.runtime is not None:
                out[tenant] = slot.runtime.applied_seq
    return out


def wait_converged(primary, standby, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        want = applied_seqs(primary)
        if want and applied_seqs(standby) == want:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"standby never converged: primary {applied_seqs(primary)} "
        f"vs standby {applied_seqs(standby)} "
        f"(replicator: {standby.replicator.stats() if standby.replicator else None})"
    )


def tenant_state(server, tenant):
    with server._lock:
        return server.supervisor.peek(tenant).runtime.state()


class TestConvergence:
    def test_standby_state_is_bit_identical(self, fleet):
        prim = fleet("prim")
        stby = fleet("stby", standby_of=[(LOCAL, prim.port)])
        result = run_load(LOCAL, prim.port, **LOAD)
        assert result.rejected == 0
        wait_converged(prim, stby)
        for t in range(LOAD["n_tenants"]):
            tenant = f"tenant-{t}"
            a = tenant_state(prim, tenant)
            b = tenant_state(stby, tenant)
            assert a["events"] == b["events"]
            assert a == b, f"{tenant}: standby state diverged"
            np.testing.assert_array_equal(
                np.asarray(a["thresholds"]["hot"]),
                np.asarray(b["thresholds"]["hot"]),
            )
        # The workload actually drove the crisis machinery.
        kinds = {
            e["type"] for e in tenant_state(prim, "tenant-0")["events"]
        }
        assert "crisis_detected" in kinds

    def test_late_subscriber_catches_up_from_journal(self, fleet):
        """A standby started after the fact replays the suffix."""
        # No checkpoints -> nothing compacted -> full journal history.
        prim = fleet("prim", checkpoint_every_epochs=10_000)
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 6})
        stby = fleet("stby", standby_of=[(LOCAL, prim.port)],
                     checkpoint_every_epochs=10_000)
        wait_converged(prim, stby)
        assert stby.replicator.stats()["snapshot_needed"] == []

    def test_standby_restart_resumes_from_cursor(self, fleet, tmp_path):
        """Seq-based resume: a bounced standby re-ships only the tail."""
        prim = fleet("prim", checkpoint_every_epochs=10_000)
        stby = fleet("stby", standby_of=[(LOCAL, prim.port)],
                     checkpoint_every_epochs=10_000)
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 4})
        wait_converged(prim, stby)
        stby.close()  # graceful: checkpoints its cursor
        run_load(LOCAL, prim.port, start_epoch=4,
                 **{**LOAD, "n_epochs": 8})
        stby2 = IngestServer(
            repl_cfg(checkpoint_every_epochs=10_000),
            tmp_path / "stby", standby_of=[(LOCAL, prim.port)],
        )
        stby2.start()
        try:
            wait_converged(prim, stby2)
            # The subscription resumed past the checkpointed cursor
            # instead of re-shipping from seq 1.
            assert stby2.replicator.records_applied < sum(
                applied_seqs(prim).values()
            )
        finally:
            stby2.close(checkpoint=False)

    def test_cold_standby_behind_compaction_needs_snapshot(self, fleet):
        """A cursor below the compaction horizon cannot log-catch-up."""
        prim = fleet("prim", checkpoint_every_epochs=2)
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 8})
        with prim._lock:
            prim.supervisor.checkpoint_all()  # compacts the journals
            compacted = {
                t: prim.supervisor.peek(t).runtime.compacted_through
                for t in prim.supervisor.tenants()
            }
        assert all(v > 0 for v in compacted.values())
        stby = fleet("fresh-stby", standby_of=[(LOCAL, prim.port)])
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            needed = stby.replicator.stats()["snapshot_needed"]
            if set(needed) == set(compacted):
                break
            time.sleep(0.05)
        assert set(stby.replicator.stats()["snapshot_needed"]) == set(
            compacted
        ), "hub should have answered snapshot-needed for every tenant"

    def test_replication_survives_partition_chaos(self, fleet):
        """Seeded partitions/link drops/delayed acks; still converges."""
        chaos_cfg = ServingChaosConfig(
            partition=0.15, link_drop=0.1, delayed_ack=0.3, seed=5
        )
        # Compaction is disabled so a partition window can never push
        # the standby behind the horizon — log catch-up always works
        # (the snapshot-needed path has its own test above).
        prim = fleet("prim", chaos=ServingChaosInjector(chaos_cfg),
                     checkpoint_every_epochs=10_000)
        stby = fleet(
            "stby", standby_of=[(LOCAL, prim.port)],
            chaos=ServingChaosInjector(chaos_cfg),
            checkpoint_every_epochs=10_000,
        )
        result = run_load(LOCAL, prim.port, **LOAD)
        assert result.rejected == 0
        wait_converged(prim, stby, timeout=30.0)
        stats = stby.replicator.stats()
        hub = prim.hub.stats()
        # The schedule actually severed the link at least once...
        assert (
            stats["partitions"] > 0
            or hub["subscribers_reaped"] > 0
            or stats["subscriptions"] > 1
        ), f"chaos never fired: {stats} / {hub}"
        # ...and the states still match exactly.
        for t in range(LOAD["n_tenants"]):
            tenant = f"tenant-{t}"
            assert tenant_state(prim, tenant) == tenant_state(
                stby, tenant
            )


class TestHeartbeats:
    def test_idle_subscription_survives_slow_loris_window(self, fleet):
        """Heartbeats keep a quiet-but-alive link from being dropped."""
        prim = fleet("prim")  # idle_timeout_s=0.6 << the idle window
        stby = fleet("stby", standby_of=[(LOCAL, prim.port)])
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 2})
        wait_converged(prim, stby)
        acks_before = stby.replicator.acks_sent
        time.sleep(2.0)  # > 3x idle_timeout_s, zero frames shipped
        stats = stby.replicator.stats()
        assert stats["connected"], "idle subscription was dropped"
        assert stby.replicator.subscriptions == 1, "link was rebuilt"
        assert stby.replicator.acks_sent > acks_before, (
            "no heartbeat acks flowed during the idle window"
        )
        assert prim.slowloris_drops == 0
        # And replication still works after the quiet spell.
        run_load(LOCAL, prim.port, start_epoch=2,
                 **{**LOAD, "n_epochs": 4})
        wait_converged(prim, stby)

    def test_dead_subscriber_is_reaped(self, fleet):
        """A subscriber that stops acking releases its retention pin."""
        prim = fleet("prim", repl_ack_timeout_s=0.5,
                     heartbeat_interval_s=0.1)
        sock = socket.create_connection((LOCAL, prim.port), timeout=5)
        sock.sendall(wire.encode_frame(
            {"op": "repl_subscribe", "cursors": {}}
        ))
        sock.settimeout(5.0)
        buf = b""
        while b"\n" not in buf:
            buf += sock.recv(65536)
        assert wire.decode_frame(buf.split(b"\n", 1)[0])["ok"]
        # Never ack: the hub must reap us after repl_ack_timeout_s.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if prim.hub.stats()["subscribers_reaped"] == 1:
                break
            time.sleep(0.05)
        assert prim.hub.stats()["subscribers_reaped"] == 1
        assert prim.hub.stats()["subscribers"] == []
        assert prim.hub.retention_floor("tenant-0") is None
        sock.close()


class TestFencing:
    def test_stale_token_rejected_newer_token_seals(self, fleet):
        prim = fleet("prim")
        with ServingClient(LOCAL, prim.port) as client:
            r = client.request({
                "op": "report", "tenant": "t", "machine": "m0",
                "epoch": 0, "values": [1.0, 2.0, 3.0, 4.0],
                "violation": False,
            })
            assert r["ok"]
        # A token *below* the node's epoch is a stale writer.
        prim.fencing.mint()  # node is now at epoch 1
        raw = socket.create_connection((LOCAL, prim.port), timeout=5)
        raw.sendall(wire.encode_frame({
            "op": "close_epoch", "tenant": "t", "epoch": 0, "fence": 0,
        }))
        buf = b""
        while b"\n" not in buf:
            buf += raw.recv(65536)
        resp = wire.decode_frame(buf.split(b"\n", 1)[0])
        assert resp["error"] == "stale-fence" and resp["fence"] == 1
        raw.close()
        assert prim.stale_fence_rejects == 1
        assert not prim.fencing.fenced

    def test_split_brain_sealed_and_seal_survives_restart(
        self, fleet, tmp_path
    ):
        prim = fleet("prim")
        stby = fleet("stby", standby_of=[(LOCAL, prim.port)])
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 3})
        wait_converged(prim, stby)
        epoch = stby.promote()
        assert stby.role == "primary" and epoch == 1

        # First post-promotion write to reach the old primary carries
        # the new token and seals it permanently.
        client = ServingClient(
            endpoints=[(LOCAL, prim.port), (LOCAL, stby.port)], seed=3
        )
        client.fence = epoch
        client.connect()
        resp = client.request({
            "op": "report", "tenant": "tenant-0", "machine": "m0",
            "epoch": 3, "values": [1.0, 2.0, 3.0, 4.0],
            "violation": False,
        })
        client.close()
        # The write failed over to the promoted standby and was acked.
        assert resp["ok"] and client.failovers >= 1
        assert prim.fencing.fenced and prim.fencing.epoch == epoch

        # The sealed node can never journal again, on any path: the
        # supervisor sheds as FENCED and the journal itself refuses.
        with prim._lock:
            results = prim.supervisor.dispatch_batch("tenant-0", [{
                "op": "close_epoch", "tenant": "tenant-0", "epoch": 3,
            }])
            assert [s for s, _ in results] == [FENCED]
            runtime = prim.supervisor.peek("tenant-0").runtime
            with pytest.raises(StaleFencingToken):
                runtime.journal.append_many([{"op": "noop"}])
        # No acked-write divergence: the promoted node holds everything
        # the fenced node ever acked.
        assert applied_seqs(stby)["tenant-0"] >= applied_seqs(
            prim
        )["tenant-0"]

        # kill -9 the fenced node; the seal is durable state.
        prim.close(checkpoint=False)
        revived = IngestServer(repl_cfg(), tmp_path / "prim")
        revived.start()
        try:
            assert revived.fencing.fenced
            assert revived.fencing.epoch == epoch
            with ServingClient(
                LOCAL, revived.port, max_retries=1
            ) as c2:
                with pytest.raises(TimeoutError):
                    c2.request({
                        "op": "report", "tenant": "tenant-0",
                        "machine": "m0", "epoch": 3,
                        "values": [1.0, 2.0, 3.0, 4.0],
                        "violation": False,
                    })
        finally:
            revived.close(checkpoint=False)


class TestClientBackoff:
    """Satellite: the client's reconnect schedule is seeded policy."""

    @staticmethod
    def _dead_endpoint():
        # Reserve a port, then close it so nothing listens there.
        sock = socket.socket()
        sock.bind((LOCAL, 0))
        port = sock.getsockname()[1]
        sock.close()
        return (LOCAL, port)

    def test_backoff_schedule_is_seeded_and_reproducible(self):
        dead = self._dead_endpoint()

        def schedule(seed):
            client = ServingClient(
                endpoints=[dead], seed=seed,
                reconnect_attempts=5, reconnect_delay=0.001,
            )
            with pytest.raises(ConnectionError):
                client.connect()
            return list(client.backoff_delays)

        a = schedule(seed=7)
        b = schedule(seed=7)
        other = schedule(seed=8)
        assert len(a) == 5
        # Same seed -> the exact same jittered schedule: a retry storm
        # replays identically under a debugger.
        assert a == b
        # The jitter is real: consecutive delays differ, and a
        # different seed lands on a different schedule.
        assert len(set(a)) > 1
        assert a != other
        # Exponential shape survives the jitter: later attempts back
        # off at least as far as the base of the first.
        assert max(a[2:]) > a[0]

    def test_backoff_caps_at_policy_ceiling(self):
        dead = self._dead_endpoint()
        client = ServingClient(
            endpoints=[dead], seed=3,
            reconnect_attempts=12, reconnect_delay=0.0001,
        )
        with pytest.raises(ConnectionError):
            client.connect()
        assert len(client.backoff_delays) == 12
        assert max(client.backoff_delays) <= client.policy.max_delay


class TestFailoverController:
    def test_promotes_survivor_and_repoints_other_standby(self, fleet):
        prim = fleet("prim")
        peers = [(LOCAL, prim.port)]
        stby1 = fleet("stby1", standby_of=peers)
        # stby2 knows both the primary and its sibling, so after the
        # failover it can find the new primary by rotation.
        stby2_endpoints = [(LOCAL, prim.port), (LOCAL, stby1.port)]
        stby2 = fleet("stby2", standby_of=stby2_endpoints)
        run_load(LOCAL, prim.port, **{**LOAD, "n_epochs": 4})
        wait_converged(prim, stby1)
        wait_converged(prim, stby2)

        controller = FailoverController(
            [(LOCAL, prim.port), (LOCAL, stby1.port),
             (LOCAL, stby2.port)],
            grace_probes=2, probe_timeout=1.0,
        )
        assert controller.step()["action"] == "healthy"

        prim.close(checkpoint=False)  # the primary vanishes
        assert controller.step()["action"] == "wait"  # grace period
        result = controller.step()
        assert result["action"] == "promoted"
        assert result["fence"] == 1
        promoted_port = result["endpoint"][1]
        promoted, other = (
            (stby1, stby2) if promoted_port == stby1.port
            else (stby2, stby1)
        )
        assert promoted.role == "primary"
        assert not other.fencing.fenced, (
            "controller must not seal a surviving standby"
        )
        assert controller.step()["action"] == "healthy"

        # Post-failover writes land on the new primary; the surviving
        # standby re-points (by endpoint rotation) and keeps tailing.
        run_load(
            LOCAL, promoted.port, start_epoch=4,
            **{**LOAD, "n_epochs": 8},
            endpoints=[(LOCAL, promoted.port)],
        )
        if other is stby2:
            wait_converged(promoted, other, timeout=20.0)


# --------------------------------------------------------------------------
# The headline proof: SIGKILL the primary, promote, bit-identical state.
# --------------------------------------------------------------------------

TENANTS = ("tenant-0", "tenant-1")
SERVE_ARGS = [
    "--metrics", "6", "--relevant", "3", "--epoch-minutes", "144",
    "--window-days", "2", "--refresh-epochs", "5",
    "--min-history-epochs", "8", "--checkpoint-every", "4",
    "--heartbeat-interval", "0.1", "--repl-ack-timeout", "2.0",
    "--seed", "7",
]
PROOF_LOAD = dict(
    seed=42, n_tenants=len(TENANTS), n_machines=12, n_epochs=14,
    n_metrics=6, crisis_epochs=(9, 10, 11),
)


def start_node(root, standby_of=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    argv = (
        [sys.executable, "-m", "repro", "serve", "--root", str(root)]
        + SERVE_ARGS
    )
    if standby_of is not None:
        argv += ["--standby-of", standby_of]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    tag, host, port = line.split()
    assert tag == "SERVING"
    return proc, host, int(port)


def tenant_states(host, port):
    states = {}
    with ServingClient(host, port) as client:
        for tenant in TENANTS:
            states[tenant] = client.request(
                {"op": "state", "tenant": tenant}
            )["state"]
    return states


def assert_bit_identical(got, ref):
    for tenant in TENANTS:
        a, b = got[tenant], ref[tenant]
        assert a["events"] == b["events"], (
            f"{tenant}: event history diverged after failover"
        )
        assert a["next_epoch"] == b["next_epoch"]
        assert a["library_labels"] == b["library_labels"]
        assert a["untrusted_epochs"] == b["untrusted_epochs"]
        np.testing.assert_array_equal(
            np.asarray(a["thresholds"]["cold"]),
            np.asarray(b["thresholds"]["cold"]),
        )
        np.testing.assert_array_equal(
            np.asarray(a["thresholds"]["hot"]),
            np.asarray(b["thresholds"]["hot"]),
        )


@pytest.fixture(scope="module")
def reference_states(tmp_path_factory):
    """A primary that is never killed, fed the identical workload."""
    root = tmp_path_factory.mktemp("failover-ref")
    proc, host, port = start_node(root)
    try:
        result = run_load(host, port, **PROOF_LOAD)
        assert result.rejected == 0
        states = tenant_states(host, port)
    finally:
        proc.kill()
        proc.wait()
    kinds = {e["type"] for t in states for e in states[t]["events"]}
    assert {"crisis_detected", "identification", "crisis_ended"} <= kinds
    return states


class TestKillFailover:
    def test_sigkill_primary_promote_standby_bit_identical(
        self, tmp_path, reference_states
    ):
        prim_proc, host, prim_port = start_node(tmp_path / "prim")
        stby_proc, _, stby_port = start_node(
            tmp_path / "stby", standby_of=f"{LOCAL}:{prim_port}"
        )
        try:
            kill_epoch = 8
            run_load(host, prim_port,
                     **{**PROOF_LOAD, "n_epochs": kill_epoch})
            # Half of kill_epoch's reports are acked when the axe falls.
            from repro.serving.loadgen import synthetic_report
            with ServingClient(host, prim_port) as client:
                for t in range(PROOF_LOAD["n_tenants"]):
                    for m in range(PROOF_LOAD["n_machines"] // 2):
                        client.request(synthetic_report(
                            PROOF_LOAD["seed"], t, kill_epoch, m,
                            PROOF_LOAD["n_metrics"],
                            PROOF_LOAD["crisis_epochs"],
                        ))
            os.kill(prim_proc.pid, signal.SIGKILL)
            prim_proc.wait()

            # The controller notices, promotes, and fences.
            controller = FailoverController(
                [(LOCAL, prim_port), (LOCAL, stby_port)],
                grace_probes=1, probe_timeout=2.0,
            )
            t0 = time.perf_counter()
            result = controller.step()
            promotion_s = time.perf_counter() - t0
            assert result["action"] == "promoted"
            assert result["endpoint"] == (LOCAL, stby_port)
            assert promotion_s < 30

            # Replication is asynchronous, so the standby may be
            # missing the acked tail.  The client's contract is
            # at-least-once: re-offer the deterministic workload
            # against the survivor; epoch-addressed idempotency
            # absorbs everything already replicated.
            result = run_load(
                host, stby_port, **PROOF_LOAD,
                endpoints=[(LOCAL, stby_port)],
            )
            assert result.rejected == 0
            got = tenant_states(host, stby_port)
        finally:
            stby_proc.send_signal(signal.SIGTERM)
            assert stby_proc.wait(timeout=15) == 0
        assert_bit_identical(got, reference_states)
