"""Integration tests for the online fingerprinting pipeline."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.identification import UNKNOWN, is_stable
from repro.core.pipeline import FingerprintPipeline


@pytest.fixture(scope="module")
def pipeline_config():
    # A short threshold window flickers (the paper's Figure 6 shows the
    # same); 30 days is the smallest setting that behaves on this trace.
    return FingerprintingConfig(
        selection=SelectionConfig(n_relevant=20),
        thresholds=ThresholdConfig(window_days=30),
    )


@pytest.fixture(scope="module")
def warm_pipeline(small_trace, pipeline_config):
    """A pipeline that has observed and confirmed the first four crises."""
    pipe = FingerprintPipeline(small_trace, pipeline_config)
    for crisis in small_trace.detected_crises[:4]:
        pipe.observe(crisis)
        pipe.refresh(crisis.detected_epoch)
        pipe.confirm(crisis)
    pipe.update_identification_threshold()
    return pipe


class TestPipelineLifecycle:
    def test_not_ready_before_refresh(self, small_trace, pipeline_config):
        pipe = FingerprintPipeline(small_trace, pipeline_config)
        with pytest.raises(RuntimeError):
            pipe.identify(small_trace.detected_crises[0])

    def test_observe_returns_selection(self, small_trace, pipeline_config):
        pipe = FingerprintPipeline(small_trace, pipeline_config)
        sel = pipe.observe(small_trace.detected_crises[0])
        assert 0 < len(sel) <= pipeline_config.selection.per_crisis_top_k

    def test_refresh_sets_parameters(self, warm_pipeline, pipeline_config):
        assert warm_pipeline.thresholds is not None
        assert len(warm_pipeline.relevant) == \
            pipeline_config.selection.n_relevant

    def test_confirm_stores_recomputable_fingerprint(self, warm_pipeline):
        known = warm_pipeline.known[0]
        assert known.fingerprint is not None
        assert known.quantile_window.ndim == 3
        assert set(np.unique(known.stale_summary)) <= {-1, 0, 1}

    def test_threshold_estimated(self, warm_pipeline):
        assert warm_pipeline.identification_threshold is not None
        assert warm_pipeline.identification_threshold > 0

    def test_identify_emits_five_epochs(self, warm_pipeline, small_trace):
        crisis = small_trace.detected_crises[4]
        outcome = warm_pipeline.identify(crisis)
        assert len(outcome.sequence) == 5
        for label in outcome.sequence:
            assert label == UNKNOWN or label in "ABCDEFGHIJ"

    def test_known_crisis_reidentified(self, warm_pipeline, small_trace):
        """A crisis type already in the library should usually be matched."""
        known_labels = {k.label for k in warm_pipeline.known}
        hits = 0
        total = 0
        for crisis in small_trace.detected_crises[4:12]:
            if crisis.label not in known_labels:
                continue
            total += 1
            seq = warm_pipeline.identify(crisis).sequence
            if is_stable(seq) and crisis.label in seq:
                hits += 1
        if total:
            assert hits / total >= 0.5

    def test_set_identification_threshold_validation(self, warm_pipeline):
        with pytest.raises(ValueError):
            warm_pipeline.set_identification_threshold(-1.0)


class TestStaleMode:
    def test_stale_fingerprints_frozen(self, small_trace, pipeline_config):
        pipe = FingerprintPipeline(
            small_trace, pipeline_config, recompute_past_fingerprints=False
        )
        crises = small_trace.detected_crises
        pipe.observe(crises[0])
        pipe.refresh(crises[0].detected_epoch)
        known = pipe.confirm(crises[0])
        frozen = known.fingerprint.copy()
        # Refresh much later: stale mode keeps the old discretization.
        pipe.observe(crises[6])
        pipe.refresh(crises[6].detected_epoch)
        np.testing.assert_array_equal(known.stale_summary,
                                      known.stale_summary)
        # Fingerprint may change only through the relevant-metric columns;
        # with identical relevant sets it must be identical.
        if np.array_equal(pipe.relevant, known.fingerprint.shape):
            np.testing.assert_array_equal(known.fingerprint, frozen)


class TestExcludeKPIs:
    def test_kpis_excluded_when_requested(self, small_trace,
                                          pipeline_config):
        pipe = FingerprintPipeline(
            small_trace, pipeline_config, exclude_kpis_from_selection=True
        )
        sel = pipe.observe(small_trace.detected_crises[0])
        assert not set(sel) & set(small_trace.kpi_metric_indices)
