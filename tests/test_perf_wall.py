"""The perf wall: direction-aware regression detection over baselines."""

import json
import pathlib

import pytest

from repro import benchwall
from repro.benchwall import (
    BENCH_SOURCES,
    HEADLINES,
    HIGHER,
    LOWER,
    Headline,
    collect_baselines,
    compare,
    evaluate,
    run_wall,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def serving(mode="quick", **over):
    base = {
        "mode": mode, "reports_per_s": 5000.0,
        "batched_reports_per_s": 6000.0,
        "p99_latency_ms": 0.25, "recovery_s": 0.5,
    }
    base.update(over)
    return base


class TestCompare:
    def test_identical_payloads_pass(self):
        checks = compare("serving", serving(), serving())
        assert len(checks) == 4
        assert not any(c.regressed for c in checks)

    def test_higher_is_better_regression(self):
        checks = compare(
            "serving", serving(), serving(reports_per_s=3000.0)
        )
        bad = {c.metric for c in checks if c.regressed}
        assert bad == {"reports_per_s"}  # 40% drop > 30% tolerance

    def test_lower_is_better_regression(self):
        checks = compare(
            "serving", serving(), serving(p99_latency_ms=1.0)
        )
        bad = {c.metric for c in checks if c.regressed}
        # 4x slower and past the absolute slack.
        assert bad == {"p99_latency_ms"}

    def test_improvements_never_fail(self):
        # 10x better in both directions: throughput up, latency down.
        current = serving(
            reports_per_s=50000.0, p99_latency_ms=0.025, recovery_s=0.05
        )
        assert not any(
            c.regressed for c in compare("serving", serving(), current)
        )

    def test_drift_inside_tolerance_passes(self):
        current = serving(
            reports_per_s=5000.0 * 0.71,  # -29%
            p99_latency_ms=0.25 * 1.29,   # +29%
        )
        checks = compare("serving", serving(), current, tolerance=0.30)
        assert not any(c.regressed for c in checks)

    def test_tolerance_is_a_hard_edge(self):
        current = serving(reports_per_s=5000.0 * 0.69)  # -31%
        checks = compare("serving", serving(), current, tolerance=0.30)
        assert any(
            c.regressed and c.metric == "reports_per_s" for c in checks
        )

    def test_absolute_slack_absorbs_sub_resolution_noise(self):
        # p99 doubling from 0.25ms to 0.5ms is scheduler jitter, not a
        # regression: the 0.25ms delta is inside the 0.5ms slack.
        current = serving(p99_latency_ms=0.50)
        checks = compare("serving", serving(), current)
        assert not any(c.regressed for c in checks)

    def test_slack_does_not_hide_a_real_blowup(self):
        # 0.25ms -> 5ms clears both the relative tolerance and the
        # absolute slack: a lost fast path still fails the wall.
        current = serving(p99_latency_ms=5.0)
        checks = compare("serving", serving(), current)
        assert any(
            c.regressed and c.metric == "p99_latency_ms" for c in checks
        )

    def test_evaluate_names_filter_restricts_the_report(self):
        report = evaluate(
            {"serving": serving()}, {"serving": serving()},
            names=["serving"],
        )
        assert {c.benchmark for c in report.checks} == {"serving"}
        assert report.skipped == {}

    def test_missing_headline_is_a_regression(self):
        current = serving()
        del current["recovery_s"]
        checks = compare("serving", serving(), current)
        bad = {c.metric for c in checks if c.regressed}
        assert bad == {"recovery_s"}


class TestEvaluate:
    def test_mode_mismatch_is_skipped_not_compared(self):
        report = evaluate(
            {"serving": serving(mode="full")},
            {"serving": serving(mode="quick", reports_per_s=1.0)},
        )
        assert report.checks == []
        assert "mode mismatch" in report.skipped["serving"]
        assert report.ok  # skipped, not failed — but visibly so

    def test_missing_baseline_and_missing_fresh_are_skipped(self):
        report = evaluate({"serving": serving()}, {})
        assert report.skipped["serving"] == "no fresh run"
        assert report.skipped["engine_refresh"] == "no committed baseline"

    def test_render_names_the_regression(self):
        report = evaluate(
            {"serving": serving()},
            {"serving": serving(reports_per_s=10.0)},
        )
        text = report.render()
        assert "REGRESSED" in text
        assert "reports_per_s" in text
        assert "FAIL" in text
        assert not report.ok

    def test_render_all_green(self):
        report = evaluate({"serving": serving()}, {"serving": serving()})
        assert "OK: no headline regressions" in report.render()


class TestWallWiring:
    def test_wall_covers_committed_baselines(self):
        """Every committed BENCH_*.json that the wall claims to cover
        must actually yield its headline metrics — extractor drift
        (a benchmark renaming a field) fails here, not in CI noise."""
        covered = 0
        for name, headlines in HEADLINES.items():
            path = RESULTS_DIR / f"BENCH_{name}.json"
            if not path.exists():
                continue
            payload = json.loads(path.read_text())
            for headline in headlines:
                value = headline.value(payload)
                assert value == value, f"{name}.{headline.label} is NaN"
                assert value >= 0
            covered += 1
        assert covered >= 4, "wall lost its committed baselines"

    def test_every_walled_benchmark_has_a_source(self):
        assert set(HEADLINES) == set(BENCH_SOURCES)
        for name, (test_path, env) in BENCH_SOURCES.items():
            assert (REPO_ROOT / test_path).exists(), test_path
            assert env.endswith("_QUICK")

    def test_directions_are_sane(self):
        for headlines in HEADLINES.values():
            for headline in headlines:
                assert headline.direction in (HIGHER, LOWER)
                is_rate = headline.label.endswith("per_s")
                is_latency = not is_rate and (
                    "latency" in headline.label
                    or "lag" in headline.label
                    or headline.label.endswith(("_ms", "_s"))
                )
                # Latency/duration metrics must never be higher-better.
                if is_latency:
                    assert headline.direction == LOWER, headline.label

    def test_run_wall_restores_baselines_and_compares(self, tmp_path):
        """End-to-end with an injected runner: the fake 'benchmark run'
        clobbers the baseline file with worse numbers; the wall must
        flag the regression AND put the committed bytes back."""
        root = tmp_path / "repo"
        results = root / "benchmarks" / "results"
        results.mkdir(parents=True)
        baseline = serving()
        path = results / "BENCH_serving.json"
        path.write_text(json.dumps(baseline))
        original_bytes = path.read_bytes()
        (root / BENCH_SOURCES["serving"][0]).parent.mkdir(
            parents=True, exist_ok=True
        )
        (root / BENCH_SOURCES["serving"][0]).write_text("# stub\n")

        def fake_runner(test_path, env):
            assert env == {"SERVING_INGEST_QUICK": "1"}
            path.write_text(json.dumps(serving(reports_per_s=10.0)))
            return 0

        report = run_wall(root, names=["serving"], runner=fake_runner)
        assert not report.ok
        assert {c.metric for c in report.regressions} == {"reports_per_s"}
        assert path.read_bytes() == original_bytes

    def test_run_wall_failed_rerun_is_skipped(self, tmp_path):
        root = tmp_path / "repo"
        results = root / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "BENCH_serving.json").write_text(json.dumps(serving()))
        (root / BENCH_SOURCES["serving"][0]).parent.mkdir(
            parents=True, exist_ok=True
        )
        (root / BENCH_SOURCES["serving"][0]).write_text("# stub\n")
        report = run_wall(
            root, names=["serving"], runner=lambda t, e: 1
        )
        assert report.ok
        assert report.skipped["serving"] == "no fresh run"


class TestScriptEntryPoint:
    def test_compare_only_exits_zero(self, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "perf_wall", REPO_ROOT / "scripts" / "perf_wall.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # Baselines vs themselves: by construction no regressions.
        assert module.main(["--compare-only"]) == 0
        out = capsys.readouterr().out
        assert "perf wall" in out
