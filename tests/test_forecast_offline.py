"""Offline forecaster rehoming: parity, nan regression, edge cases."""

import dataclasses

import numpy as np
import pytest

from repro.extensions import CrisisForecaster
from repro.extensions.forecasting import ForecastResult
from repro.forecast.offline import (
    OfflineCrisisForecaster,
    OfflineForecastResult,
)
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def method(small_trace):
    m = FingerprintMethod()
    m.fit(small_trace, small_trace.labeled_crises)
    return m


@pytest.fixture(scope="module")
def forecasters(small_trace, method):
    """The wrapper and the rehomed implementation, identically fitted."""
    kwargs = dict(lead_epochs=1, window_epochs=3)
    crises = small_trace.labeled_crises
    wrapper = CrisisForecaster(
        small_trace, method.thresholds, method.relevant, **kwargs
    ).fit(crises[:10])
    rehomed = OfflineCrisisForecaster(
        small_trace, method.thresholds, method.relevant, **kwargs
    ).fit(crises[:10])
    return wrapper, rehomed, crises


class TestParity:
    """The extensions shim must preserve the offline path bit-for-bit."""

    def test_wrapper_is_the_offline_forecaster(self):
        assert issubclass(CrisisForecaster, OfflineCrisisForecaster)
        assert ForecastResult is OfflineForecastResult

    def test_scores_identical(self, forecasters):
        wrapper, rehomed, _ = forecasters
        epochs = np.arange(200, 260)
        assert np.array_equal(
            wrapper.score_epochs(epochs), rehomed.score_epochs(epochs)
        )

    def test_recall_and_false_alarms_preserved(self, forecasters):
        wrapper, rehomed, crises = forecasters
        threshold = rehomed.calibrate_threshold(false_alarm_budget=0.02)
        assert wrapper.calibrate_threshold(
            false_alarm_budget=0.02
        ) == threshold
        a = wrapper.evaluate(crises[10:], threshold=threshold)
        b = rehomed.evaluate(crises[10:], threshold=threshold)
        assert a == b
        assert a.n_crises > 0 and np.isfinite(a.recall)


class TestEvaluateNanRegression:
    """evaluate() must not silently report recall=nan (satellite fix)."""

    def test_no_detected_crises_raises(self, forecasters, small_trace):
        wrapper, _, crises = forecasters
        undetected = [
            dataclasses.replace(c, detected_epoch=None)
            for c in crises[10:]
        ]
        with pytest.raises(ValueError, match="n_crises=0"):
            wrapper.evaluate(undetected, threshold=0.5)

    def test_empty_crisis_list_raises(self, forecasters):
        wrapper, _, _ = forecasters
        with pytest.raises(ValueError, match="n_crises=0"):
            wrapper.evaluate([], threshold=0.5)


class TestEdgeCases:
    def test_unfitted_scoring_raises(self, small_trace, method):
        fc = OfflineCrisisForecaster(
            small_trace, method.thresholds, method.relevant
        )
        with pytest.raises(RuntimeError, match="not fitted"):
            fc.score_epochs(np.arange(5))

    def test_fit_with_no_positive_windows_raises(
        self, small_trace, method
    ):
        fc = OfflineCrisisForecaster(
            small_trace, method.thresholds, method.relevant
        )
        crises = small_trace.labeled_crises
        undetected = [
            dataclasses.replace(c, detected_epoch=None) for c in crises
        ]
        with pytest.raises(ValueError, match="no positive epochs"):
            fc.fit(undetected)

    def test_early_detection_has_empty_positive_window(
        self, small_trace, method
    ):
        """A crisis detected at epoch <= lead contributes no positives."""
        fc = OfflineCrisisForecaster(
            small_trace, method.thresholds, method.relevant,
            lead_epochs=2, window_epochs=4,
        )
        crisis = dataclasses.replace(
            small_trace.labeled_crises[0], detected_epoch=1
        )
        assert fc._positive_epochs(crisis).size == 0
        with pytest.raises(ValueError, match="no positive epochs"):
            fc.fit([crisis])

    def test_all_anomalous_exclusion_mask_raises(
        self, small_trace, method, monkeypatch
    ):
        fc = OfflineCrisisForecaster(
            small_trace, method.thresholds, method.relevant,
        ).fit(small_trace.labeled_crises[:10])
        monkeypatch.setattr(
            fc, "_exclusion_mask",
            lambda: np.ones(small_trace.n_epochs, dtype=bool),
        )
        with pytest.raises(ValueError, match="no crisis-free epochs"):
            fc.calibrate_threshold()
        with pytest.raises(ValueError, match="no crisis-free epochs"):
            fc.evaluate(small_trace.labeled_crises[10:])

    def test_invalid_windows_rejected(self, small_trace, method):
        with pytest.raises(ValueError, match="positive"):
            OfflineCrisisForecaster(
                small_trace, method.thresholds, method.relevant,
                lead_epochs=0,
            )
