"""Tests for confusion analysis."""

import pytest

from repro.evaluation.confusion import (
    NO_MATCH,
    UNSTABLE,
    confusion_counts,
    confusion_table,
    top_confusions,
)
from repro.evaluation.identification import CrisisOutcome


def outcomes():
    return [
        CrisisOutcome(0, "B", True, ("B",) * 5),          # correct
        CrisisOutcome(1, "B", True, ("E",) * 5),          # B -> E
        CrisisOutcome(2, "E", False, ("B",) * 5),         # E -> B
        CrisisOutcome(3, "E", False, ("B",) * 5),         # E -> B
        CrisisOutcome(4, "A", True, ("x",) * 5),          # A -> unknown
        CrisisOutcome(5, "D", False, ("A", "D", "D", "D", "A")),  # unstable
    ]


class TestConfusionCounts:
    def test_counts(self):
        counts = confusion_counts(outcomes())
        assert counts[("B", "B")] == 1
        assert counts[("B", "E")] == 1
        assert counts[("E", "B")] == 2
        assert counts[("A", NO_MATCH)] == 1
        assert counts[("D", UNSTABLE)] == 1


class TestConfusionTable:
    def test_renders_all_rows(self):
        table = confusion_table(outcomes())
        for label in ("A", "B", "D", "E"):
            assert f"\n{label}" in "\n" + table
        assert NO_MATCH in table
        assert UNSTABLE in table

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_table([])


class TestTopConfusions:
    def test_ordering(self):
        top = top_confusions(outcomes())
        assert top[0] == ("E", "B", 2)
        assert ("B", "E", 1) in top

    def test_excludes_unknown_and_unstable(self):
        top = top_confusions(outcomes(), k=10)
        assert all(e not in (NO_MATCH, UNSTABLE) for _, e, _ in top)
