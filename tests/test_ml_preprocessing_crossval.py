"""Tests for StandardScaler and cross-validation helpers."""

import numpy as np
import pytest

from repro.ml.crossval import cross_val_score, kfold_indices
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        Xs = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Xs.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Xs.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_passes_through(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        np.testing.assert_allclose(Xs[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(2.0, 0.5, (50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_empty_and_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestKFold:
    def test_partitions_all_indices(self):
        folds = list(kfold_indices(20, 4))
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(17, 5):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 17

    def test_shuffling_changes_order(self):
        rng = np.random.default_rng(2)
        plain = [t.tolist() for _, t in kfold_indices(10, 2)]
        shuffled = [t.tolist() for _, t in kfold_indices(10, 2, rng)]
        assert plain != shuffled

    def test_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))


class TestCrossValScore:
    def test_separable_problem_scores_high(self):
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(0, 1, (60, 3)), rng.normal(4, 1, (60, 3))])
        y = np.array([0] * 60 + [1] * 60)

        def fit_predict(Xtr, ytr, Xte):
            return GaussianNaiveBayes().fit(Xtr, ytr).predict(Xte)

        scores = cross_val_score(fit_predict, X, y, k=4,
                                 rng=np.random.default_rng(4))
        assert len(scores) == 4
        assert min(scores) > 0.9
