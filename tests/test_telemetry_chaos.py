"""Tests for the seeded chaos harness."""

from dataclasses import replace

import numpy as np
import pytest

from repro.telemetry.chaos import (
    ChaosConfig,
    ChaosEvent,
    ChaosInjector,
    InjectedTenantCrash,
    ServingChaosConfig,
    ServingChaosInjector,
)

N_MACHINES, N_METRICS = 12, 6


def clean_stream(n_epochs, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.lognormal(1.0, 0.3, (N_MACHINES, N_METRICS))
            for _ in range(n_epochs)]


FULL_CHAOS = ChaosConfig(
    dropout=0.2, delay=0.1, duplicate=0.1, nan_burst=0.1,
    counter_reset=0.05, stuck=0.05, seed=17,
)


class TestDeterminism:
    def test_same_seed_same_events_and_output(self):
        stream = clean_stream(30)
        a = ChaosInjector(FULL_CHAOS, N_MACHINES, N_METRICS)
        b = ChaosInjector(FULL_CHAOS, N_MACHINES, N_METRICS)
        out_a = [a.perturb(e, s) for e, s in enumerate(stream)]
        out_b = [b.perturb(e, s) for e, s in enumerate(stream)]
        assert a.events == b.events
        assert len(a.events) > 0
        for x, y in zip(out_a, out_b):
            np.testing.assert_array_equal(x, y)

    def test_same_seed_same_deliveries(self):
        stream = clean_stream(30)
        a = ChaosInjector(FULL_CHAOS, N_MACHINES, N_METRICS)
        b = ChaosInjector(FULL_CHAOS, N_MACHINES, N_METRICS)
        for e, s in enumerate(stream):
            da = a.deliveries(e, s)
            db = b.deliveries(e, s)
            assert [m for m, _ in da] == [m for m, _ in db]
            for (_, va), (_, vb) in zip(da, db):
                np.testing.assert_array_equal(va, vb)

    def test_different_seed_differs(self):
        stream = clean_stream(30)
        a = ChaosInjector(FULL_CHAOS, N_MACHINES, N_METRICS)
        b = ChaosInjector(replace(FULL_CHAOS, seed=99),
                          N_MACHINES, N_METRICS)
        for e, s in enumerate(stream):
            a.perturb(e, s)
            b.perturb(e, s)
        assert a.events != b.events


class TestFaults:
    def test_dropout_rate(self):
        cfg = ChaosConfig(dropout=0.25, seed=1)
        inj = ChaosInjector(cfg, N_MACHINES, N_METRICS)
        n_rows = 0
        n_dropped = 0
        for e, s in enumerate(clean_stream(200)):
            out = inj.perturb(e, s)
            n_rows += N_MACHINES
            n_dropped += int(np.all(np.isnan(out), axis=1).sum())
        assert 0.18 <= n_dropped / n_rows <= 0.32

    def test_nan_burst_spans_epochs(self):
        cfg = ChaosConfig(nan_burst=1.0, nan_burst_metrics=2,
                          nan_burst_epochs=3, seed=2)
        inj = ChaosInjector(cfg, 1, N_METRICS)
        stream = clean_stream(4)
        outs = [inj.perturb(e, s[:1]) for e, s in enumerate(stream)]
        burst = next(ev for ev in inj.events if ev.kind == "nan-burst")
        assert len(burst.metrics) == 2
        for out in outs[:3]:
            assert np.isnan(out[0, list(burst.metrics)]).all()

    def test_counter_reset_zeroes_metrics(self):
        cfg = ChaosConfig(counter_reset=1.0, counter_reset_metrics=1, seed=3)
        inj = ChaosInjector(cfg, 1, N_METRICS)
        out = inj.perturb(0, clean_stream(1)[0][:1])
        reset = next(ev for ev in inj.events if ev.kind == "counter-reset")
        assert out[0, reset.metrics[0]] == 0.0

    def test_stuck_freezes_values(self):
        cfg = ChaosConfig(stuck=1.0, stuck_epochs=3, seed=4)
        inj = ChaosInjector(cfg, 1, N_METRICS)
        stream = clean_stream(3, seed=5)
        outs = [inj.perturb(e, s[:1]) for e, s in enumerate(stream)]
        np.testing.assert_array_equal(outs[1], outs[0])
        np.testing.assert_array_equal(outs[2], outs[0])

    def test_delay_arrives_next_epoch_stale(self):
        cfg = ChaosConfig(delay=1.0, seed=6)
        inj = ChaosInjector(cfg, 1, N_METRICS)
        stream = clean_stream(2, seed=7)
        first = inj.perturb(0, stream[0][:1])
        assert np.isnan(first).all()  # report held back
        second = inj.perturb(1, stream[1][:1])
        np.testing.assert_array_equal(second[0], stream[0][0])

    def test_duplicate_delivers_twice(self):
        cfg = ChaosConfig(duplicate=1.0, seed=8)
        inj = ChaosInjector(cfg, 2, N_METRICS)
        reports = inj.deliveries(0, clean_stream(1, seed=9)[0][:2])
        assert [m for m, _ in reports] == [0, 0, 1, 1]

    def test_no_chaos_is_identity(self):
        inj = ChaosInjector(ChaosConfig(), N_MACHINES, N_METRICS)
        stream = clean_stream(5)
        for e, s in enumerate(stream):
            np.testing.assert_array_equal(inj.perturb(e, s), s)
        assert inj.events == []

    def test_wrap_stream(self):
        inj = ChaosInjector(ChaosConfig(dropout=0.5, seed=10),
                            N_MACHINES, N_METRICS)
        outs = list(inj.wrap(clean_stream(10)))
        assert len(outs) == 10
        assert any(np.isnan(o).any() for o in outs)


class TestValidation:
    def test_probabilities_checked(self):
        with pytest.raises(ValueError):
            ChaosConfig(dropout=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(nan_burst_epochs=0)

    def test_shape_checked(self):
        inj = ChaosInjector(ChaosConfig(), 3, 4)
        with pytest.raises(ValueError):
            inj.perturb(0, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ChaosInjector(ChaosConfig(), 0, 4)

    def test_event_is_value_object(self):
        assert ChaosEvent(0, 1, "dropout") == ChaosEvent(0, 1, "dropout")


class TestServingChaos:
    """The serving-path injector: pure-function schedules, typed faults."""

    def test_fires_is_a_pure_function_of_seed_kind_index(self):
        cfg = ServingChaosConfig(tenant_crash=0.5, disk_full=0.5, seed=5)
        a, b = ServingChaosInjector(cfg), ServingChaosInjector(cfg)
        forward = [a.fires("tenant_crash", i) for i in range(64)]
        # Query b in reverse order: state-free, same answers.
        backward = [b.fires("tenant_crash", i) for i in reversed(range(64))]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)
        # Kinds are independently seeded: same indices, different draws.
        assert forward != [a.fires("disk_full", i) for i in range(64)]

    def test_seed_changes_the_schedule(self):
        fire = lambda seed: [
            ServingChaosInjector(
                ServingChaosConfig(slow_loris=0.5, seed=seed)
            ).fires("slow_loris", i)
            for i in range(64)
        ]
        assert fire(0) != fire(1)

    def test_fired_events_are_logged(self):
        chaos = ServingChaosInjector(
            ServingChaosConfig(malformed_frame=0.5, seed=2)
        )
        hits = sum(chaos.fires("malformed_frame", i) for i in range(40))
        assert hits == len(chaos.events)
        assert all(e.kind == "malformed_frame" for e in chaos.events)

    def test_next_index_counts_per_kind(self):
        chaos = ServingChaosInjector(ServingChaosConfig())
        assert [chaos.next_index("disk_full") for _ in range(3)] == [0, 1, 2]
        assert chaos.next_index("torn_write") == 0

    def test_corrupt_frame_is_deterministic_and_varied(self):
        cfg = ServingChaosConfig(malformed_frame=1.0, seed=3)
        frame = b'{"op": "ping"}\n'
        a = [ServingChaosInjector(cfg).corrupt_frame(frame, i)
             for i in range(12)]
        b = [ServingChaosInjector(cfg).corrupt_frame(frame, i)
             for i in range(12)]
        assert a == b
        assert all(f.endswith(b"\n") for f in a)
        # The style cycle actually produces distinct damage shapes.
        assert len(set(a)) >= 5
        assert b"[1, 2, 3]\n" in a          # not-json
        assert b"\n" in a                   # empty line

    def test_journal_hook_disk_full_is_enospc(self):
        import errno

        chaos = ServingChaosInjector(
            ServingChaosConfig(disk_full=1.0, seed=1)
        )
        hook = chaos.journal_hook("t")
        with pytest.raises(OSError) as err:
            hook(b"frame-bytes")
        assert err.value.errno == errno.ENOSPC

    def test_journal_hook_torn_write_returns_proper_prefix(self):
        chaos = ServingChaosInjector(
            ServingChaosConfig(torn_write=1.0, seed=1)
        )
        hook = chaos.journal_hook("t")
        frame = b"x" * 100
        torn = hook(frame)
        assert torn == frame[: len(torn)]
        assert 0 < len(torn) < len(frame)

    def test_tenant_fault_hook_raises_typed_crash(self):
        chaos = ServingChaosInjector(
            ServingChaosConfig(tenant_crash=1.0, seed=1)
        )
        hook = chaos.tenant_fault_hook("bad")
        with pytest.raises(InjectedTenantCrash, match="bad"):
            hook({"op": "report"})

    def test_zero_probability_never_fires(self):
        chaos = ServingChaosInjector(ServingChaosConfig(seed=9))
        assert not any(chaos.fires("torn_write", i) for i in range(100))
        assert chaos.events == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingChaosConfig(disk_full=1.5)
        with pytest.raises(ValueError):
            ServingChaosConfig(malformed_frame=-0.1)
