"""Tests for order-sensitivity analysis."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.evaluation.permutations import (
    PermutationDistribution,
    permutation_distribution,
)

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)


@pytest.fixture(scope="module")
def experiment(small_trace):
    return OnlineIdentificationExperiment(small_trace, CONFIG)


class TestExplicitOrders:
    def test_orders_override(self, experiment):
        n = len(experiment.labeled)
        order = np.arange(n)[::-1]
        curves = experiment.run(
            mode="online", bootstrap=5, alphas=np.array([0.05]),
            orders=[order],
        )
        assert len(curves.scores) == 1

    def test_invalid_order_rejected(self, experiment):
        with pytest.raises(ValueError):
            experiment.run(orders=[np.array([0, 0, 1])])


class TestPermutationDistribution:
    @pytest.fixture(scope="class")
    def dist(self, experiment):
        return permutation_distribution(
            experiment, mode="online", bootstrap=5, n_orders=6, seed=3
        )

    def test_one_accuracy_per_order(self, dist):
        assert dist.balanced_accuracies.shape == (6,)
        assert np.all((dist.balanced_accuracies >= 0)
                      & (dist.balanced_accuracies <= 1))

    def test_summary_statistics(self, dist):
        assert dist.worst <= dist.mean <= dist.best
        assert dist.std >= 0

    def test_chronological_typicality_defined(self, dist):
        assert dist.chronological_is_typical(z=10.0)

    def test_needs_multiple_orders(self, experiment):
        with pytest.raises(ValueError):
            permutation_distribution(experiment, n_orders=1)


class TestDistributionObject:
    def test_degenerate_distribution(self):
        d = PermutationDistribution(0.1, np.full(3, 0.8))
        assert d.std == pytest.approx(0.0, abs=1e-12)
        assert d.chronological_is_typical()
