"""Tests for experiment ablation switches."""

import numpy as np
import pytest

from repro.config import FingerprintingConfig, SelectionConfig
from repro.evaluation.experiments import OfflineIdentificationExperiment
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def fitted(small_trace):
    method = FingerprintMethod(
        FingerprintingConfig(selection=SelectionConfig(n_relevant=15))
    )
    crises = small_trace.labeled_crises
    method.fit(small_trace, crises)
    return method, crises


class TestPerEpochThresholdAblation:
    def test_single_threshold_mode_runs(self, fitted):
        method, crises = fitted
        exp = OfflineIdentificationExperiment(
            method, crises, n_runs=2, seed=0,
            alphas=np.array([0.05, 0.2]),
            per_epoch_thresholds=False,
        )
        curves = exp.run()
        assert len(curves.scores) == 2

    def test_threshold_arrays_differ(self, fitted):
        method, crises = fitted
        scaled = OfflineIdentificationExperiment(
            method, crises, n_runs=1, seed=0, per_epoch_thresholds=True
        )
        single = OfflineIdentificationExperiment(
            method, crises, n_runs=1, seed=0, per_epoch_thresholds=False
        )
        scaled._precompute_distances()
        single._precompute_distances()
        t_scaled = scaled._thresholds(0.1)
        t_single = single._thresholds(0.1)
        # Single mode repeats one value; scaled mode grows with the window.
        assert np.allclose(t_single, t_single[0])
        assert not np.allclose(t_scaled, t_scaled[0])
        assert t_scaled[0] <= t_scaled[-1] + 1e-9 or \
            t_scaled[0] < t_single[0]
