"""FleetAggregator end-to-end: real worker processes, real queues.

Process counts are kept small — correctness of the plumbing is under
test here, not throughput (that is ``benchmarks/test_fleet_scaling.py``).
"""

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.core.streaming import EpochUntrusted, StreamingCrisisMonitor
from repro.fleet import FleetAggregator, FleetEpochQuality
from repro.telemetry.collector import EpochQuality
from repro.telemetry.reliability import QuorumPolicy

METRICS = ["cpu", "disk", "net", "lat"]


def make_fleet(**kwargs):
    defaults = dict(n_shards=2, batch_size=16, close_deadline_s=30.0)
    defaults.update(kwargs)
    return FleetAggregator(METRICS, config=FleetConfig(**defaults),
                          fleet_size=None)


class TestEpochLifecycle:
    def test_multi_epoch_multi_shard(self):
        rng = np.random.default_rng(0)
        with make_fleet() as fleet:
            for epoch in range(3):
                matrix = rng.normal(loc=epoch, size=(50, len(METRICS)))
                fleet.submit_matrix(matrix)
                summary = fleet.close_epoch()
                assert summary.epoch == epoch
                assert summary.n_machines_reporting == 50
                assert summary.quantiles.shape == (len(METRICS), 3)
                assert np.all(np.isfinite(summary.quantiles))
                # Medians track the shifting location: epochs are isolated.
                assert abs(summary.quantiles[0, 1] - epoch) < 0.5
                quality = summary.quality
                assert isinstance(quality, FleetEpochQuality)
                assert isinstance(quality, EpochQuality)  # gate-compatible
                assert quality.n_shards_reporting == 2
                assert quality.missing_shards == ()

    def test_unknown_fleet_zero_reports_raises(self):
        with make_fleet() as fleet:
            with pytest.raises(ValueError, match="no machine reported"):
                fleet.close_epoch()
            # The aggregator stays usable after the error.
            fleet.submit_matrix(np.ones((8, len(METRICS))))
            summary = fleet.close_epoch()
            assert summary.n_machines_reporting == 8

    def test_known_fleet_zero_reports_degrades(self):
        config = FleetConfig(n_shards=2, close_deadline_s=30.0)
        with FleetAggregator(
            METRICS, config=config, fleet_size=100,
            quorum=QuorumPolicy(min_fraction=0.5, min_count=1),
        ) as fleet:
            summary = fleet.close_epoch()
            assert not summary.quality.quorum_met
            assert np.all(np.isnan(summary.quantiles))

    def test_dropped_accounting(self):
        with make_fleet() as fleet:
            matrix = np.ones((20, len(METRICS)))
            matrix[3, 1] = np.nan
            matrix[7, 2] = np.inf
            fleet.submit_matrix(matrix)
            fleet.note_dropped(5)  # agent-side drops ride along
            summary = fleet.close_epoch()
            assert summary.quality.dropped_samples == 7

    def test_backpressure_tiny_queue(self):
        # queue_depth=1 with many small batches forces the coordinator to
        # block on the bounded queue; everything must still arrive.
        config = FleetConfig(
            n_shards=2, batch_size=4, queue_depth=1, close_deadline_s=30.0
        )
        with FleetAggregator(METRICS, config=config) as fleet:
            rng = np.random.default_rng(1)
            for _ in range(100):
                fleet.submit(rng.normal(size=len(METRICS)))
            summary = fleet.close_epoch()
            assert summary.n_machines_reporting == 100
            assert summary.quality.dropped_samples == 0

    def test_report_shape_validated(self):
        with make_fleet() as fleet:
            with pytest.raises(ValueError):
                fleet.submit(np.ones(len(METRICS) + 1))
            with pytest.raises(ValueError):
                fleet.submit_matrix(np.ones((4, len(METRICS) + 1)))
            fleet.submit_matrix(np.ones((4, len(METRICS))))
            fleet.close_epoch()

    def test_shutdown_idempotent(self):
        fleet = make_fleet()
        fleet.submit_matrix(np.ones((4, len(METRICS))))
        fleet.close_epoch()
        fleet.shutdown()
        fleet.shutdown()


class TestMonitorIntegration:
    def test_monitor_consumes_fleet_summaries(self):
        # The whole point of merging back into EpochSummary: the
        # streaming monitor ingests fleet-produced epochs unchanged.
        monitor = StreamingCrisisMonitor(
            n_metrics=len(METRICS), relevant_metrics=[0, 1]
        )
        rng = np.random.default_rng(2)
        with make_fleet() as fleet:
            for _ in range(5):
                fleet.submit_matrix(rng.lognormal(size=(30, len(METRICS))))
                summary = fleet.close_epoch()
                events = monitor.ingest(
                    summary.quantiles, 0.0, quality=summary.quality
                )
                assert not any(
                    isinstance(e, EpochUntrusted) for e in events
                )

    def test_degraded_fleet_epoch_is_quarantined(self):
        # A below-quorum fleet close produces an all-NaN summary whose
        # FleetEpochQuality trips the monitor's gate.
        monitor = StreamingCrisisMonitor(
            n_metrics=len(METRICS), relevant_metrics=[0]
        )
        config = FleetConfig(n_shards=2, close_deadline_s=30.0)
        with FleetAggregator(
            METRICS, config=config, fleet_size=100,
            quorum=QuorumPolicy(min_fraction=0.5, min_count=1),
        ) as fleet:
            fleet.submit_matrix(np.ones((5, len(METRICS))))  # 5% coverage
            summary = fleet.close_epoch()
        events = monitor.ingest(
            summary.quantiles, 0.0, quality=summary.quality
        )
        untrusted = [e for e in events if isinstance(e, EpochUntrusted)]
        assert len(untrusted) == 1
        assert "quorum-failed" in untrusted[0].reasons


def _stubborn_worker(ready):
    """A worker that installs SIG_IGN for SIGTERM and spins forever."""
    import signal
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.set()
    while True:
        time.sleep(0.05)


class TestShutdownEscalation:
    def test_clean_shutdown_needs_no_force_kill(self):
        fleet = make_fleet()
        fleet.shutdown()
        assert fleet.force_killed_shards == []
        assert all(not w.process.is_alive() for w in fleet._workers)

    def test_hung_worker_is_reaped_and_recorded(self, caplog):
        import logging

        fleet = make_fleet()
        # Swap shard 1's real worker for one that ignores SIGTERM and
        # never reads its queue — the worst-case hung process.
        victim = fleet._workers[1]
        victim.process.kill()
        victim.process.join()
        ready = fleet._ctx.Event()
        stub = fleet._ctx.Process(
            target=_stubborn_worker, args=(ready,), daemon=True
        )
        stub.start()
        assert ready.wait(timeout=10), "stub never installed its handler"
        victim.process = stub
        with caplog.at_level(
            logging.WARNING, logger="repro.fleet.coordinator"
        ):
            fleet.shutdown(join_timeout_s=0.3)
        # The escalation ladder reached SIGKILL: the process is dead,
        # the shard is recorded, and the operator got a log line.
        assert not stub.is_alive()
        assert fleet.force_killed_shards == [1]
        assert any("force-killed" in r.message for r in caplog.records)
        # No other worker leaked either.
        assert all(not w.process.is_alive() for w in fleet._workers)
