"""Tests for telemetry data-quality validation."""

import numpy as np
import pytest

from repro.telemetry.validation import (
    ValidationIssue,
    validate_epoch_summary,
    validate_history,
)


def good_summary(n_metrics=5):
    rng = np.random.default_rng(0)
    base = rng.uniform(1, 10, (n_metrics, 1))
    return base * np.array([[1.0, 1.5, 2.0]])


class TestValidateEpochSummary:
    def test_clean_summary_ok(self):
        report = validate_epoch_summary(good_summary())
        assert report.ok
        assert not report.issues

    def test_non_finite_is_error(self):
        q = good_summary()
        q[2, 1] = np.nan
        report = validate_epoch_summary(q, metric_names=list("abcde"))
        assert not report.ok
        assert report.errors[0].code == "non-finite"
        assert "c" in report.errors[0].message

    def test_quantile_inversion_is_error(self):
        q = good_summary()
        q[1] = [5.0, 3.0, 1.0]
        report = validate_epoch_summary(q)
        assert any(i.code == "quantile-inversion" for i in report.errors)

    def test_all_zero_is_warning(self):
        q = good_summary()
        q[4] = 0.0
        report = validate_epoch_summary(q)
        assert report.ok  # warnings do not fail validation
        assert any(i.code == "all-zero" for i in report.warnings)

    def test_bad_shape(self):
        report = validate_epoch_summary(np.zeros(3))
        assert not report.ok


class TestValidateHistory:
    def test_clean_history_ok(self):
        rng = np.random.default_rng(1)
        h = rng.uniform(1, 2, (200, 4, 3))
        assert validate_history(h).ok

    def test_stuck_metric_warned(self):
        rng = np.random.default_rng(2)
        h = rng.uniform(1, 2, (200, 4, 3))
        h[-120:, 2, :] = 7.0
        report = validate_history(h, stuck_epochs=96)
        stuck = [i for i in report.warnings if i.code == "stuck"]
        assert len(stuck) == 1
        assert stuck[0].metric_index == 2

    def test_non_finite_error(self):
        h = np.ones((10, 2, 3))
        h[3, 1, 2] = np.inf
        assert not validate_history(h).ok

    def test_short_history_passes(self):
        assert validate_history(np.ones((1, 2, 3))).ok


class TestValidationIssue:
    def test_severity_checked(self):
        with pytest.raises(ValueError):
            ValidationIssue("fatal", "x", "y")
