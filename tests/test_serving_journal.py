"""Write-ahead journal: durability framing, torn tails, compaction.

Satellite coverage for the corrupt-file robustness requirement: every
damage mode either stops replay at the last valid record (the torn-tail
crash signature) or raises a *typed* error — never a raw
``struct.error``/``KeyError``.
"""

import errno
import os
import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.journal import (
    JournalCorruptError,
    JournalError,
    JournalTornWrite,
    WriteAheadJournal,
)


def rec(i, **extra):
    return {"op": "report", "tenant": "t", "machine": f"m{i}", **extra}


class TestAppendReplay:
    def test_seqs_are_contiguous_and_replayable(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j.wal") as j:
            seqs = j.append_many([rec(0), rec(1), rec(2)])
            assert seqs == [1, 2, 3]
            assert j.append(rec(3)) == 4
            records = j.replay()
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        assert records[0]["machine"] == "m0"

    def test_replay_after_seq_skips_applied_prefix(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j.wal") as j:
            j.append_many([rec(i) for i in range(5)])
            assert [r["seq"] for r in j.replay(after_seq=3)] == [4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(0), rec(1)])
        with WriteAheadJournal(path) as j:
            assert j.last_seq == 2
            assert j.append(rec(2)) == 3

    def test_payload_floats_survive_bitwise(self, tmp_path):
        import numpy as np

        values = [float(v) for v in np.random.default_rng(1).normal(size=8)]
        with WriteAheadJournal(tmp_path / "j.wal") as j:
            j.append({"values": values})
            got = j.replay()[0]["values"]
        assert got == values


class TestTornTail:
    @pytest.mark.parametrize("cut", [1, 3, 7, 10, 20])
    def test_truncated_tail_stops_at_last_valid_record(self, tmp_path, cut):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(i) for i in range(3)])
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - cut)
        with WriteAheadJournal(path) as j:
            records = j.replay()
            # The cut can only have destroyed the final record.
            assert [r["seq"] for r in records] in ([1, 2], [1, 2, 3])

    def test_flipped_byte_in_tail_record_is_torn_tail(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(0), rec(1)])
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # corrupt the last record's payload
        path.write_bytes(bytes(data))
        with WriteAheadJournal(path) as j:
            assert [r["seq"] for r in j.replay()] == [1]

    def test_truncate_tail_trims_damage(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(0), rec(1)])
            intact = j.valid_size()
        with open(path, "ab") as fh:
            # A record prefix claiming 32 payload bytes, then the plug
            # was pulled after only 4 arrived.
            fh.write(b"\x20\x00\x00\x00\xde\xad\xbe\xefAAAA")
        with WriteAheadJournal(path) as j:
            dropped = j.truncate_tail()
            assert dropped > 0
            assert path.stat().st_size == intact
            # The journal is writable again after the trim.
            j.append(rec(2))
            assert [r["seq"] for r in j.replay()] == [1, 2, 3]

    def test_mid_file_corruption_is_typed(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(i) for i in range(3)])
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # damage the FIRST record, not the tail
        path.write_bytes(bytes(data))
        with WriteAheadJournal(path) as j:
            with pytest.raises(JournalCorruptError):
                j.replay()

    def test_garbage_file_is_typed(self, tmp_path):
        path = tmp_path / "j.wal"
        # A huge bogus length prefix followed by more data than the
        # prefix region: implausible length -> typed error.
        path.write_bytes(b"\xff\xff\xff\xffgarbage" * 4)
        with WriteAheadJournal(path) as j:
            with pytest.raises(JournalCorruptError):
                j.replay()


class TestWriteFailures:
    def test_disk_full_rolls_back_the_whole_batch(self, tmp_path):
        calls = []

        def hook(frame):
            calls.append(frame)
            if len(calls) == 3:  # fail on the 3rd record of the batch
                raise OSError(errno.ENOSPC, "chaos: disk full")
            return None

        path = tmp_path / "j.wal"
        with WriteAheadJournal(path, write_hook=hook) as j:
            j.append_many([rec(0)])  # committed before the failure
            with pytest.raises(OSError):
                j.append_many([rec(1), rec(2), rec(3)])
            # The failed batch left no trace: not even its first two
            # records survive (no half-committed batches).
            assert [r["seq"] for r in j.replay()] == [1]
            # And the journal keeps working once space is back.
            j.write_hook = None
            assert j.append(rec(4)) == 2

    def test_enospc_at_flush_cannot_leak_buffered_frames(self, tmp_path):
        """Frames stuck in the writer's buffer die with the rollback.

        The true ENOSPC shape: writes land in the BufferedWriter fine
        and the *flush* fails.  If the rollback merely truncated the
        file, the undelivered frames would sit in the buffer and a
        later successful append would flush them past the truncation
        point with sequence numbers that were never advanced — durable
        duplicate seqs.  The rollback must discard the buffer.
        """
        path = tmp_path / "j.wal"
        j = WriteAheadJournal(path)
        j.append(rec(0))  # committed before the failure

        class FlushFull:
            """File proxy: buffering works, the next 2 flushes fail."""

            def __init__(self, fh):
                self._fh = fh
                self.failures = 2

            def write(self, b):
                return self._fh.write(b)

            def flush(self):
                if self.failures:
                    self.failures -= 1
                    raise OSError(errno.ENOSPC, "chaos: disk full")
                self._fh.flush()

            def tell(self):
                return self._fh.tell()

            def fileno(self):
                return self._fh.fileno()

            def seek(self, *args):
                return self._fh.seek(*args)

            def close(self):
                self._fh.close()

        j._fh = FlushFull(j._fh)
        with pytest.raises(OSError):
            j.append_many([rec(1), rec(2)])
        # Space comes back: the rolled-back frames must not resurface
        # with reused sequence numbers on the next successful append.
        assert j.append(rec(3)) == 2
        records = j.replay()
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["machine"] for r in records] == ["m0", "m3"]
        j.close()

    def test_reserve_seq_pins_numbering_above_checkpoint_cursor(
        self, tmp_path
    ):
        """An empty journal + a reserved floor never reuses old seqs."""
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(0), rec(1)])
            j.compact(applied_seq=2)  # journal now empty
        with WriteAheadJournal(path) as j:  # restart: file remembers nothing
            j.reserve_seq(2)
            assert j.append(rec(2)) == 3
            # A floor below the journal's own knowledge is a no-op.
            j.reserve_seq(1)
            assert j.append(rec(3)) == 4

    def test_torn_write_persists_damage_and_raises(self, tmp_path):
        def hook(frame):
            return frame[: len(frame) // 2]  # die mid-write

        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append(rec(0))
        with WriteAheadJournal(path, write_hook=hook) as j:
            with pytest.raises(JournalTornWrite):
                j.append(rec(1))
        # Recovery sees exactly what a pulled plug leaves: a torn tail
        # past the last intact record.
        with WriteAheadJournal(path) as j:
            assert [r["seq"] for r in j.replay()] == [1]
            j.truncate_tail()
            assert j.append(rec(2)) == 2


class TestCompaction:
    def test_compact_drops_applied_prefix(self, tmp_path):
        path = tmp_path / "j.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(i) for i in range(10)])
            kept = j.compact(applied_seq=7)
            assert kept == 3
            assert [r["seq"] for r in j.replay()] == [8, 9, 10]
            # Sequence numbering continues from the pre-compaction tip.
            assert j.append(rec(99)) == 11
        assert path.stat().st_size < 11 * 60  # actually shrank

    def test_compact_to_empty_still_tracks_seq(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j.wal") as j:
            j.append_many([rec(0), rec(1)])
            assert j.compact(applied_seq=2) == 0
            assert j.replay() == []
            assert j.append(rec(2)) == 3

    def test_compact_is_atomic_no_tmp_left(self, tmp_path):
        with WriteAheadJournal(tmp_path / "j.wal") as j:
            j.append_many([rec(i) for i in range(4)])
            j.compact(applied_seq=2)
        leftovers = [p for p in os.listdir(tmp_path) if "tmp" in p]
        assert leftovers == []


class TestFuzzedDamage:
    """Property fuzz of the frame parser: arbitrary byte-level damage.

    Whatever we do to the file — truncate it anywhere, flip bits, splice
    in garbage, zero out a span — replay must land in exactly one of the
    contract's three outcomes: a clean replay, a torn-tail stop at the
    last intact record, or a typed ``JournalError``.  Any other
    exception (``struct.error``, ``UnicodeDecodeError``, ``KeyError``,
    ...) is a crash bug.  When replay *does* return, the records must be
    a verbatim prefix of the originals — damage may lose the tail, but
    it must never invent or reorder records.
    """

    @staticmethod
    def _pristine(tmp, n):
        path = tmp / "src.wal"
        with WriteAheadJournal(path) as j:
            j.append_many([rec(i) for i in range(n)])
            original = j.replay()
        return path.read_bytes(), original

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_damage_is_classified_never_a_crash(self, data):
        with tempfile.TemporaryDirectory() as d:
            tmp = pathlib.Path(d)
            n = data.draw(st.integers(min_value=1, max_value=6))
            blob, original = self._pristine(tmp, n)
            kind = data.draw(
                st.sampled_from(["truncate", "flip", "insert", "zero_span"])
            )
            if kind == "truncate":
                cut = data.draw(st.integers(0, len(blob)))
                damaged = blob[:cut]
            elif kind == "flip":
                pos = data.draw(st.integers(0, len(blob) - 1))
                bit = data.draw(st.integers(0, 7))
                damaged = (
                    blob[:pos]
                    + bytes([blob[pos] ^ (1 << bit)])
                    + blob[pos + 1:]
                )
            elif kind == "insert":
                pos = data.draw(st.integers(0, len(blob)))
                junk = bytes(
                    data.draw(
                        st.lists(
                            st.integers(0, 255), min_size=1, max_size=48
                        )
                    )
                )
                damaged = blob[:pos] + junk + blob[pos:]
            else:  # zero_span
                pos = data.draw(st.integers(0, len(blob) - 1))
                span = data.draw(st.integers(1, min(32, len(blob) - pos)))
                damaged = blob[:pos] + b"\x00" * span + blob[pos + span:]

            path = tmp / "damaged.wal"
            path.write_bytes(damaged)
            with WriteAheadJournal(path) as j:
                try:
                    records = j.replay()
                except JournalError:
                    return  # typed classification: acceptable outcome
                # Clean or torn tail: an intact, verbatim prefix.
                assert records == original[: len(records)]
                # A torn tail must be repairable: after trimming, the
                # journal replays the same prefix and accepts appends.
                assert j.truncate_tail() >= 0
                assert j.replay() == records
                j.append(rec(999))

    @given(
        n=st.integers(min_value=1, max_value=5),
        cut_back=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_pure_truncation_is_never_corrupt(self, n, cut_back):
        """A pulled plug only ever shortens the file; that exact damage
        shape must always classify as clean/torn-tail, never corrupt —
        corrupt would page an operator for a routine crash."""
        with tempfile.TemporaryDirectory() as d:
            tmp = pathlib.Path(d)
            blob, original = self._pristine(tmp, n)
            damaged = blob[: max(0, len(blob) - cut_back)]
            path = tmp / "torn.wal"
            path.write_bytes(damaged)
            with WriteAheadJournal(path) as j:
                records = j.replay()  # must NOT raise
                assert records == original[: len(records)]
                assert len(records) < len(original)
