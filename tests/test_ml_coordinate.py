"""Cross-checks between the two independent L1-logistic solvers."""

import numpy as np
import pytest

from repro.ml.coordinate import CoordinateDescentL1Logistic, l1_objective
from repro.ml.logistic import L1LogisticRegression

from tests.test_ml_logistic import make_sparse_problem


class TestCoordinateDescent:
    def test_recovers_support(self):
        X, y, support = make_sparse_problem()
        model = CoordinateDescentL1Logistic(lam=0.02, max_sweeps=300).fit(
            X, y
        )
        assert support <= set(model.nonzero_indices.tolist())
        assert model.n_nonzero < 20

    def test_validation(self):
        with pytest.raises(ValueError):
            CoordinateDescentL1Logistic(lam=-1.0)
        solver = CoordinateDescentL1Logistic()
        with pytest.raises(ValueError):
            solver.fit(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            solver.fit(np.zeros((2, 2)), np.array([0, 2]))

    def test_constant_column_ignored(self):
        X, y, _ = make_sparse_problem()
        X = np.hstack([X, np.zeros((len(y), 1))])
        model = CoordinateDescentL1Logistic(lam=0.02).fit(X, y)
        assert model.weights[-1] == 0.0


class TestSolverAgreement:
    @pytest.mark.parametrize("lam", [0.005, 0.02, 0.08])
    def test_same_objective_value(self, lam):
        """Both solvers minimize the same convex objective; their optima
        must agree to high precision."""
        X, y, _ = make_sparse_problem(n=300, d=40)
        fista = L1LogisticRegression(lam=lam, max_iter=5000,
                                     tol=1e-10).fit(X, y)
        cd = CoordinateDescentL1Logistic(lam=lam, max_sweeps=2000,
                                         tol=1e-10).fit(X, y)
        f_fista = l1_objective(X, y, fista)
        f_cd = l1_objective(X, y, cd)
        assert f_cd == pytest.approx(f_fista, rel=1e-4, abs=1e-6)

    def test_same_support_at_moderate_penalty(self):
        X, y, _ = make_sparse_problem(n=500, d=40)
        lam = 0.03
        fista = L1LogisticRegression(lam=lam, max_iter=5000,
                                     tol=1e-10).fit(X, y)
        cd = CoordinateDescentL1Logistic(lam=lam, max_sweeps=2000,
                                         tol=1e-10).fit(X, y)
        strong_f = set(np.flatnonzero(np.abs(fista.weights) > 1e-3))
        strong_c = set(np.flatnonzero(np.abs(cd.weights) > 1e-3))
        assert strong_f == strong_c

    def test_objective_helper_penalizes_weights(self):
        X, y, _ = make_sparse_problem()
        model = L1LogisticRegression(lam=0.02).fit(X, y)
        base = l1_objective(X, y, model)
        heavier = l1_objective(
            X, y,
            type(model)(
                weights=model.weights * 3,
                intercept=model.intercept,
                lam=model.lam,
                n_iter=model.n_iter,
                converged=model.converged,
            ),
        )
        assert heavier > base
