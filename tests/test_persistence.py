"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.persistence import TRACE_FORMAT_VERSION, load_trace, save_trace


class TestTraceRoundtrip:
    def test_roundtrip_preserves_everything(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        back = load_trace(path)

        np.testing.assert_array_equal(back.quantiles, small_trace.quantiles)
        np.testing.assert_array_equal(back.anomalous, small_trace.anomalous)
        np.testing.assert_array_equal(
            back.kpi_violation_fraction,
            small_trace.kpi_violation_fraction,
        )
        assert back.metric_names == small_trace.metric_names
        assert back.quantile_levels == small_trace.quantile_levels
        assert back.n_machines == small_trace.n_machines

    def test_roundtrip_sla(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        back = load_trace(path)
        assert back.sla.violation_fraction == \
            small_trace.sla.violation_fraction
        np.testing.assert_allclose(back.sla.thresholds,
                                   small_trace.sla.thresholds)

    def test_roundtrip_crises_and_raw_windows(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        back = load_trace(path)
        assert len(back.crises) == len(small_trace.crises)
        a = small_trace.crises[0]
        b = back.crises[0]
        assert b.label == a.label
        assert b.detected_epoch == a.detected_epoch
        assert b.instance.seed == a.instance.seed
        np.testing.assert_array_equal(b.instance.machines,
                                      a.instance.machines)
        np.testing.assert_array_equal(b.raw.values, a.raw.values)
        np.testing.assert_array_equal(b.raw.violations, a.raw.violations)

    def test_loaded_trace_usable_by_method(self, small_trace, tmp_path):
        from repro.methods import FingerprintMethod

        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        back = load_trace(path)
        method = FingerprintMethod()
        method.fit(back, back.labeled_crises)
        v = method.vector(back.labeled_crises[0])
        assert np.all(np.abs(v) <= 1.0)

    def test_version_check(self, small_trace, tmp_path):
        import json

        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        # Corrupt the header version.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_trace(path)
        assert TRACE_FORMAT_VERSION == 1
