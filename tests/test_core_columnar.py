"""Unit tests for the columnar epoch-block core.

Parity proofs against the per-machine paths live in
``tests/test_columnar_parity.py``; this file pins the block's own
contracts: capacity growth, reuse across epochs, NaN-mask accounting,
keyed idempotent overwrites, the dict-style mapping facade, and the
window block's view/snapshot semantics.
"""

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.core.columnar import EpochBlock, WindowBlock


class TestEpochBlockAnonymous:
    def test_append_masks_and_counts_nonfinite(self):
        block = EpochBlock(4, capacity=2)
        assert block.append(np.array([1.0, np.nan, np.inf, 4.0])) == 2
        assert block.append(np.array([5.0, 6.0, 7.0, 8.0])) == 0
        matrix = block.matrix()
        assert matrix.shape == (2, 4)
        assert_array_equal(matrix[1], [5.0, 6.0, 7.0, 8.0])
        assert matrix[0][0] == 1.0 and matrix[0][3] == 4.0
        assert np.isnan(matrix[0][1]) and np.isnan(matrix[0][2])
        assert_array_equal(block.column_counts(), [2, 1, 1, 2])

    def test_append_batch_matches_scalar_appends(self):
        rng = np.random.default_rng(7)
        reports = rng.normal(size=(50, 6))
        reports[rng.random(reports.shape) < 0.2] = np.nan
        reports[rng.random(reports.shape) < 0.05] = np.inf
        one = EpochBlock(6, capacity=1)
        many = EpochBlock(6, capacity=1)
        dropped_one = sum(one.append(r) for r in reports)
        dropped_many = many.append_batch(reports)
        assert dropped_one == dropped_many
        assert_array_equal(one.matrix(), many.matrix())
        assert_array_equal(one.column_counts(), many.column_counts())

    def test_capacity_doubles_preserving_rows(self):
        block = EpochBlock(2, capacity=1)
        for i in range(9):
            block.append(np.array([float(i), float(-i)]))
        assert block.capacity >= 9
        assert_array_equal(block.matrix()[:, 0], np.arange(9.0))

    def test_reset_reuses_buffer(self):
        block = EpochBlock(3, capacity=4)
        block.append_batch(np.ones((4, 3)))
        buf_before = block._values
        block.reset()
        assert len(block) == 0
        assert block.matrix().shape == (0, 3)
        assert_array_equal(block.column_counts(), [0, 0, 0])
        block.append(np.array([1.0, 2.0, 3.0]))
        assert block._values is buf_before  # no reallocation on reuse

    def test_shape_mismatch_raises(self):
        block = EpochBlock(3)
        with pytest.raises(ValueError):
            block.append(np.ones(4))
        with pytest.raises(ValueError):
            block.append_batch(np.ones((2, 2)))

    def test_empty_batch_is_a_noop(self):
        block = EpochBlock(3)
        assert block.append_batch(np.empty((0, 3))) == 0
        assert len(block) == 0


class TestEpochBlockKeyed:
    def test_put_and_mapping_facade(self):
        block = EpochBlock(2)
        block.put("m1", [1.0, 2.0], violation=True)
        block.put("m0", [3.0, 4.0])
        assert len(block) == 2
        assert "m1" in block and "m0" in block and "m9" not in block
        assert sorted(block) == ["m0", "m1"]
        assert block["m1"] == ([1.0, 2.0], True)
        assert block["m0"] == ([3.0, 4.0], False)
        assert dict(block.items()) == {
            "m1": ([1.0, 2.0], True),
            "m0": ([3.0, 4.0], False),
        }
        with pytest.raises(KeyError):
            block["missing"]

    def test_put_overwrites_idempotently(self):
        block = EpochBlock(2)
        block.put("m0", [1.0, 1.0], violation=True)
        block.put("m0", [2.0, 2.0], violation=False)
        assert len(block) == 1
        assert block["m0"] == ([2.0, 2.0], False)

    def test_values_stored_verbatim(self):
        # Keyed rows do NOT NaN-mask: the serving close path owns the
        # NaN semantics, exactly like the dict buffer it replaced.
        block = EpochBlock(3)
        block.put("m0", [np.nan, np.inf, 1.5])
        values, violation = block["m0"]
        assert np.isnan(values[0]) and np.isposinf(values[1])
        assert values[2] == 1.5 and violation is False

    def test_put_batch_matches_scalar_puts(self):
        rng = np.random.default_rng(3)
        machines = [f"m{i}" for i in range(20)]
        matrix = rng.normal(size=(20, 4))
        violations = [i % 3 == 0 for i in range(20)]
        one = EpochBlock(4)
        many = EpochBlock(4)
        for m, row, v in zip(machines, matrix, violations):
            one.put(m, row, v)
        many.put_batch(machines, matrix, violations)
        v_one, f_one = one.gather()
        v_many, f_many = many.gather()
        assert_array_equal(v_one, v_many)
        assert_array_equal(f_one, f_many)
        assert one.machines() == many.machines()

    def test_reset_keeps_interning_and_clears_presence(self):
        block = EpochBlock(2)
        block.put("a", [1.0, 2.0])
        block.put("b", [3.0, 4.0], violation=True)
        block.clear()  # dict-compatible alias
        assert len(block) == 0
        assert "a" not in block
        assert block.machines() == []
        # Rows are reused for the machine's reports in later epochs.
        block.put("b", [9.0, 9.0])
        assert block.machines() == ["b"]
        assert block["b"] == ([9.0, 9.0], False)

    def test_gather_only_present_rows(self):
        block = EpochBlock(2)
        block.put("a", [1.0, 2.0])
        block.put("b", [3.0, 4.0], violation=True)
        block.clear()
        block.put("b", [5.0, 6.0])
        values, violations = block.gather()
        assert_array_equal(values, [[5.0, 6.0]])
        assert_array_equal(violations, [False])

    def test_batch_shape_mismatches_raise(self):
        block = EpochBlock(2)
        with pytest.raises(ValueError):
            block.put_batch(["a"], np.ones((2, 2)), [False, False])
        with pytest.raises(ValueError):
            block.put_batch(["a", "b"], np.ones((2, 2)), [False])


class TestWindowBlock:
    def test_append_view_snapshot(self):
        block = WindowBlock(3, 2, capacity=1)
        rows = [np.full((3, 2), float(i)) for i in range(5)]
        for row in rows:
            block.append(row)
        assert len(block) == 5
        view = block.view()
        assert view.base is not None  # a view, not a copy
        assert_array_equal(view, np.stack(rows))
        snap = block.snapshot()
        assert snap.base is None
        assert_array_equal(snap, view)
        # np.stack over the block works (sequence protocol) — what the
        # pre-columnar call sites did with the list of arrays.
        assert_array_equal(np.stack(block), view)
        assert_array_equal(block[0], rows[0])

    def test_from_rows_and_from_array_round_trip(self):
        rows = [np.arange(6.0).reshape(3, 2) + i for i in range(4)]
        a = WindowBlock.from_rows(rows)
        b = WindowBlock.from_array(np.stack(rows))
        assert_array_equal(a.view(), b.view())

    def test_shape_mismatch_raises(self):
        block = WindowBlock(3, 2)
        with pytest.raises(ValueError):
            block.append(np.ones((2, 2)))
        with pytest.raises(ValueError):
            WindowBlock.from_rows([])
