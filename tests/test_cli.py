"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.persistence import save_trace


@pytest.fixture(scope="module")
def trace_path(small_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    save_trace(small_trace, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out.npz"])
        assert args.machines == 40
        assert args.command == "simulate"

    def test_identify_options(self):
        args = build_parser().parse_args(
            ["identify", "t.npz", "--relevant-metrics", "15",
             "--window-days", "30"]
        )
        assert args.relevant_metrics == 15
        assert args.window_days == 30

    def test_monitor_options(self):
        args = build_parser().parse_args(
            ["monitor", "t.npz", "--checkpoint", "c.npz", "--resume",
             "--stop-epoch", "500", "--coverage-floor", "0.6"]
        )
        assert args.command == "monitor"
        assert args.resume
        assert args.checkpoint == "c.npz"
        assert args.stop_epoch == 500
        assert args.coverage_floor == 0.6
        # Unset on the command line: resolved at run time to one day
        # of the trace's epochs (96 only at 15-minute epochs).
        assert args.checkpoint_every is None


class TestCommands:
    def test_simulate_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        rc = main([
            "simulate", str(out),
            "--machines", "10",
            "--warmup-days", "8",
            "--bootstrap-days", "20",
            "--labeled-days", "45",
            "--bootstrap-crises", "2",
            "--seed", "3",
        ])
        assert rc == 0
        assert out.exists()
        assert "detected crises" in capsys.readouterr().out

    def test_render(self, trace_path, small_trace, capsys):
        crisis = small_trace.detected_crises[0]
        rc = main(["render", trace_path, str(crisis.index),
                   "--relevant-metrics", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"crisis {crisis.index}" in out
        assert "metrics:" in out

    def test_render_missing_crisis(self, trace_path, capsys):
        rc = main(["render", trace_path, "9999"])
        assert rc == 1

    def test_identify_runs(self, trace_path, capsys):
        rc = main([
            "identify", trace_path,
            "--relevant-metrics", "15",
            "--window-days", "30",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out

    def test_monitor_resume_requires_checkpoint(self, trace_path, capsys):
        rc = main(["monitor", trace_path, "--resume"])
        assert rc == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_monitor_checkpoint_then_resume(self, trace_path, tmp_path,
                                            capsys):
        ckpt = tmp_path / "monitor.npz"
        rc = main([
            "monitor", trace_path,
            "--relevant-metrics", "10",
            "--checkpoint", str(ckpt),
            "--stop-epoch", "1200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert ckpt.exists()
        assert "checkpoint written" in out
        assert "monitored epochs 0..1200" in out

        rc = main([
            "monitor", trace_path,
            "--checkpoint", str(ckpt),
            "--resume",
            "--stop-epoch", "1400",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"resumed from {ckpt} at epoch 1200" in out
        assert "monitored epochs 1200..1400" in out


class TestDiscoverParser:
    def test_run_options(self):
        args = build_parser().parse_args(
            ["discover", "run", "t.npz", "--state", "d.npz",
             "--relevant-metrics", "12", "--radius-scale", "1.2",
             "--no-promote"]
        )
        assert args.command == "discover"
        assert args.discover_action == "run"
        assert args.state == "d.npz"
        assert args.relevant_metrics == 12
        assert args.radius_scale == 1.2
        assert args.no_promote
        assert args.assign_radius is None

    def test_stats_and_promote(self):
        args = build_parser().parse_args(["discover", "stats", "d.npz"])
        assert args.discover_action == "stats"
        args = build_parser().parse_args(
            ["discover", "promote", "d.npz", "3", "--label", "db-fail"]
        )
        assert args.discover_action == "promote"
        assert args.cluster == 3 and args.label == "db-fail"

    def test_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover"])

    def test_admin_incidents(self):
        args = build_parser().parse_args(
            ["admin", "--endpoints", "h:1", "incidents", "acme"]
        )
        assert args.admin_command == "incidents" and args.tenant == "acme"

    def test_serve_discovery_flag(self):
        args = build_parser().parse_args(["serve", "--root", "r"])
        assert args.discovery is False
        args = build_parser().parse_args(
            ["serve", "--root", "r", "--discovery"]
        )
        assert args.discovery is True


class TestDiscoverCommands:
    def test_run_stats_promote_round_trip(self, trace_path, tmp_path,
                                          capsys):
        state = tmp_path / "discovery.npz"
        rc = main([
            "discover", "run", trace_path,
            "--state", str(state), "--no-promote",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered types" in out
        assert "supervised ceiling" in out
        assert state.exists()

        rc = main(["discover", "stats", str(state)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n_clusters" in out and "radius" in out

        from repro.discovery import load_discovery

        cid = load_discovery(state).clusterer.cluster_ids()[0]
        rc = main([
            "discover", "promote", str(state), str(cid),
            "--label", "ops-reviewed",
        ])
        assert rc == 0
        assert "promoted cluster" in capsys.readouterr().out
        assert (
            load_discovery(state).clusterer.label(cid) == "ops-reviewed"
        )

    def test_promote_unknown_cluster_fails(self, tmp_path, capsys):
        import numpy as np

        from repro.config import DiscoveryConfig
        from repro.discovery import (
            DiscoveryEngine,
            OnlineClusterer,
            save_discovery,
        )

        engine = DiscoveryEngine(DiscoveryConfig(assign_radius=1.0))
        engine.clusterer = OnlineClusterer(2, engine.config)
        engine.clusterer.ingest(np.zeros(2), ref=0)
        state = tmp_path / "d.npz"
        save_discovery(engine, state)
        rc = main(["discover", "promote", str(state), "99"])
        assert rc == 1
        assert "no cluster 99" in capsys.readouterr().err


class TestForecastParser:
    def test_train_options(self):
        args = build_parser().parse_args(
            ["forecast", "train", "t.npz", "m.npz",
             "--train-epochs", "5000", "--horizon", "3",
             "--budget", "0.05", "--negatives", "800"]
        )
        assert args.command == "forecast"
        assert args.forecast_action == "train"
        assert args.train_epochs == 5000
        assert args.horizon == 3
        assert args.budget == 0.05
        assert args.negatives == 800

    def test_run_and_stats(self):
        args = build_parser().parse_args(
            ["forecast", "run", "t.npz", "m.npz", "--eval-start", "9000"]
        )
        assert args.forecast_action == "run" and args.eval_start == 9000
        args = build_parser().parse_args(["forecast", "stats", "m.npz"])
        assert args.forecast_action == "stats"

    def test_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast"])

    def test_serve_forecast_flags(self):
        args = build_parser().parse_args(["serve", "--root", "r"])
        assert args.forecast is False and args.forecast_model is None
        args = build_parser().parse_args(
            ["serve", "--root", "r", "--forecast",
             "--forecast-model", "m.npz"]
        )
        assert args.forecast is True and args.forecast_model == "m.npz"

    def test_admin_forecasts(self):
        args = build_parser().parse_args(
            ["admin", "--endpoints", "h:1", "forecasts", "acme"]
        )
        assert args.admin_command == "forecasts" and args.tenant == "acme"


class TestForecastCommands:
    def test_train_stats_run_round_trip(self, trace_path, tmp_path,
                                        capsys):
        model = tmp_path / "forecast.npz"
        rc = main([
            "forecast", "train", trace_path, str(model),
            "--train-epochs", "10000", "--negatives", "1000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage 1: lambda" in out
        assert "model written" in out
        assert model.exists()

        rc = main(["forecast", "stats", str(model)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fitted" in out and "alarm_threshold" in out

        rc = main([
            "forecast", "run", trace_path, str(model),
            "--eval-start", "10000",
        ])
        assert rc == 0
        assert "lead-time vs precision" in capsys.readouterr().out
