"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.persistence import save_trace


@pytest.fixture(scope="module")
def trace_path(small_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    save_trace(small_trace, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out.npz"])
        assert args.machines == 40
        assert args.command == "simulate"

    def test_identify_options(self):
        args = build_parser().parse_args(
            ["identify", "t.npz", "--relevant-metrics", "15",
             "--window-days", "30"]
        )
        assert args.relevant_metrics == 15
        assert args.window_days == 30

    def test_monitor_options(self):
        args = build_parser().parse_args(
            ["monitor", "t.npz", "--checkpoint", "c.npz", "--resume",
             "--stop-epoch", "500", "--coverage-floor", "0.6"]
        )
        assert args.command == "monitor"
        assert args.resume
        assert args.checkpoint == "c.npz"
        assert args.stop_epoch == 500
        assert args.coverage_floor == 0.6
        # Unset on the command line: resolved at run time to one day
        # of the trace's epochs (96 only at 15-minute epochs).
        assert args.checkpoint_every is None


class TestCommands:
    def test_simulate_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        rc = main([
            "simulate", str(out),
            "--machines", "10",
            "--warmup-days", "8",
            "--bootstrap-days", "20",
            "--labeled-days", "45",
            "--bootstrap-crises", "2",
            "--seed", "3",
        ])
        assert rc == 0
        assert out.exists()
        assert "detected crises" in capsys.readouterr().out

    def test_render(self, trace_path, small_trace, capsys):
        crisis = small_trace.detected_crises[0]
        rc = main(["render", trace_path, str(crisis.index),
                   "--relevant-metrics", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"crisis {crisis.index}" in out
        assert "metrics:" in out

    def test_render_missing_crisis(self, trace_path, capsys):
        rc = main(["render", trace_path, "9999"])
        assert rc == 1

    def test_identify_runs(self, trace_path, capsys):
        rc = main([
            "identify", trace_path,
            "--relevant-metrics", "15",
            "--window-days", "30",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out

    def test_monitor_resume_requires_checkpoint(self, trace_path, capsys):
        rc = main(["monitor", trace_path, "--resume"])
        assert rc == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_monitor_checkpoint_then_resume(self, trace_path, tmp_path,
                                            capsys):
        ckpt = tmp_path / "monitor.npz"
        rc = main([
            "monitor", trace_path,
            "--relevant-metrics", "10",
            "--checkpoint", str(ckpt),
            "--stop-epoch", "1200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert ckpt.exists()
        assert "checkpoint written" in out
        assert "monitored epochs 0..1200" in out

        rc = main([
            "monitor", trace_path,
            "--checkpoint", str(ckpt),
            "--resume",
            "--stop-epoch", "1400",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"resumed from {ckpt} at epoch 1200" in out
        assert "monitored epochs 1200..1400" in out
