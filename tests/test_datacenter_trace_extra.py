"""Additional trace-container behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.datacenter.trace import CrisisRecord, DatacenterTrace
from repro.datacenter.crises import CrisisInstance
from repro.datacenter.sla import KPIDefinition, SLAPolicy


def tiny_trace(n_epochs=20, n_metrics=4, anomalous_epochs=(5, 6)):
    rng = np.random.default_rng(0)
    quantiles = rng.uniform(1, 2, (n_epochs, n_metrics, 3))
    anomalous = np.zeros(n_epochs, bool)
    anomalous[list(anomalous_epochs)] = True
    sla = SLAPolicy((KPIDefinition("k", 0, 10.0),))
    return DatacenterTrace(
        metric_names=[f"m{i}" for i in range(n_metrics)],
        quantile_levels=(0.25, 0.5, 0.95),
        quantiles=quantiles,
        anomalous=anomalous,
        kpi_violation_fraction=np.zeros((n_epochs, 1)),
        sla=sla,
        crises=[],
        n_machines=5,
    )


class TestTraceValidation:
    def test_metric_name_count_checked(self):
        with pytest.raises(ValueError):
            trace = tiny_trace()
            DatacenterTrace(
                metric_names=["only_one"],
                quantile_levels=trace.quantile_levels,
                quantiles=trace.quantiles,
                anomalous=trace.anomalous,
                kpi_violation_fraction=trace.kpi_violation_fraction,
                sla=trace.sla,
            )

    def test_mask_shape_checked(self):
        trace = tiny_trace()
        with pytest.raises(ValueError):
            DatacenterTrace(
                metric_names=trace.metric_names,
                quantile_levels=trace.quantile_levels,
                quantiles=trace.quantiles,
                anomalous=np.zeros(3, bool),
                kpi_violation_fraction=trace.kpi_violation_fraction,
                sla=trace.sla,
            )


class TestThresholdHistory:
    def test_excludes_anomalous(self):
        trace = tiny_trace(anomalous_epochs=(2, 3, 4))
        hist = trace.threshold_history(10, 10)
        assert hist.shape[0] == 7

    def test_window_clipping(self):
        trace = tiny_trace(anomalous_epochs=())
        hist = trace.threshold_history(5, 100)
        assert hist.shape[0] == 5


class TestCrisisRecordProperties:
    def test_label_and_detected(self):
        inst = CrisisInstance("B", 10, 4, 1.0, np.array([0]), labeled=True)
        rec = CrisisRecord(index=0, instance=inst, detected_epoch=11)
        assert rec.label == "B"
        assert rec.detected
        undetected = CrisisRecord(index=1, instance=inst,
                                  detected_epoch=None)
        assert not undetected.detected

    def test_trace_crisis_filters(self):
        trace = tiny_trace()
        inst_l = CrisisInstance("A", 2, 2, 1.0, np.array([0]), labeled=True)
        inst_b = CrisisInstance("B", 8, 2, 1.0, np.array([0]),
                                labeled=False)
        trace.crises = [
            CrisisRecord(0, inst_l, detected_epoch=2),
            CrisisRecord(1, inst_b, detected_epoch=8),
            CrisisRecord(2, inst_l, detected_epoch=None),
        ]
        assert [c.index for c in trace.labeled_crises] == [0]
        assert [c.index for c in trace.bootstrap_crises] == [1]
        assert [c.index for c in trace.detected_crises] == [0, 1]
