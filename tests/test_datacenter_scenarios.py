"""Tests for the named simulation scenarios."""

import pytest

from repro.datacenter.scenarios import (
    SCENARIOS,
    clean_metrics,
    junk_heavy,
    paper_scale,
    quick,
    tiny,
)


class TestScenarios:
    def test_registry_complete(self):
        assert set(SCENARIOS) == {
            "paper-scale", "quick", "tiny", "clean-metrics",
            "junk-heavy", "large-fleet",
        }

    def test_paper_scale_supports_240_day_window(self):
        cfg = paper_scale()
        assert cfg.warmup_days + cfg.bootstrap_days >= 240
        assert cfg.n_bootstrap_crises == 20

    def test_clean_metrics_has_no_junk(self):
        cfg = clean_metrics()
        assert cfg.n_noise_metrics == 0
        assert cfg.n_drift_metrics == 0
        assert cfg.n_periodic_metrics == 0

    def test_junk_heavy_doubles_junk(self):
        base = quick()
        heavy = junk_heavy()
        base_junk = (base.n_noise_metrics + base.n_drift_metrics
                     + base.n_periodic_metrics)
        heavy_junk = (heavy.n_noise_metrics + heavy.n_drift_metrics
                      + heavy.n_periodic_metrics)
        assert heavy_junk >= 2 * base_junk

    def test_seed_threading(self):
        assert paper_scale(seed=13).seed == 13
        assert tiny(seed=99).seed == 99

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenarios_valid(self, name):
        cfg = SCENARIOS[name]() if name != "tiny" else SCENARIOS[name]()
        assert cfg.total_days > 0
