"""Tests for the text renderers."""

import numpy as np
import pytest

from repro.viz import render_fingerprint, render_roc, render_series


class TestRenderFingerprint:
    def test_basic_glyphs(self):
        s = np.array([[1, 0, -1]])
        out = render_fingerprint(s)
        assert "#" in out and "." in out
        assert "|# .|" in out

    def test_title_and_names(self):
        s = np.zeros((2, 3), dtype=int)
        out = render_fingerprint(s, metric_names=["a", "b", "c"], title="T")
        assert out.startswith("T")
        assert "a, b, c" in out

    def test_one_line_per_epoch(self):
        s = np.zeros((5, 4), dtype=int)
        out = render_fingerprint(s)
        assert sum(1 for line in out.splitlines()
                   if line.startswith("|")) == 5

    def test_rejects_non_ternary(self):
        with pytest.raises(ValueError):
            render_fingerprint(np.array([[2, 0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_fingerprint(np.array([1, 0]))


class TestRenderROC:
    def test_contains_curve(self):
        fpr = np.array([0.0, 0.1, 1.0])
        tpr = np.array([0.0, 0.9, 1.0])
        out = render_roc(fpr, tpr, title="roc")
        assert "*" in out
        assert "false-alarm rate" in out
        assert out.startswith("roc")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_roc(np.array([0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            render_roc(np.array([]), np.array([]))


class TestRenderSeries:
    def test_legend(self):
        x = np.linspace(0, 1, 5)
        out = render_series(x, [x, 1 - x], ["up", "down"])
        assert "o=up" in out
        assert "x=down" in out

    def test_nan_values_skipped(self):
        x = np.linspace(0, 1, 4)
        y = np.array([0.1, np.nan, 0.5, 0.9])
        out = render_series(x, [y], ["s"])
        assert "o" in out

    def test_validation(self):
        x = np.linspace(0, 1, 3)
        with pytest.raises(ValueError):
            render_series(x, [x], ["a", "b"])
        with pytest.raises(ValueError):
            render_series(x, [np.zeros(4)], ["a"])
