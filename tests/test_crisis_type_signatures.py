"""Per-type metric signatures: each crisis type moves its own metrics.

End-to-end checks that the simulator's ten failure modes produce the
metric movements their descriptions promise, as seen through the actual
fingerprinting lens (hot/cold summaries under 2/98 thresholds).
"""

import numpy as np
import pytest

from repro.core.summary import summary_vectors
from repro.core.thresholds import percentile_thresholds


@pytest.fixture(scope="module")
def signature_tools(small_trace):
    history = small_trace.quantiles[small_trace.crisis_free_mask()]
    thresholds = percentile_thresholds(history)
    index = {name: i for i, name in enumerate(small_trace.metric_names)}

    def mean_summary(crisis):
        det = crisis.detected_epoch
        window = small_trace.quantiles[det : det + 4]
        return summary_vectors(window, thresholds).astype(float).mean(axis=0)

    def crises_of(label):
        return [c for c in small_trace.labeled_crises if c.label == label]

    return mean_summary, crises_of, index


def _col(summary, index, metric, quantile):
    q = {"q25": 0, "q50": 1, "q95": 2}[quantile]
    return summary[index[metric], q]


class TestTypeSignatures:
    def test_b_backlog(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        hits = 0
        for crisis in crises_of("B"):
            s = mean_summary(crisis)
            if _col(s, index, "post.pending_archive", "q95") > 0.5:
                hits += 1
        assert hits >= len(crises_of("B")) * 0.8

    def test_b_output_drops(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        crisis = crises_of("B")[0]
        s = mean_summary(crisis)
        assert _col(s, index, "post.archive_throughput", "q50") <= 0

    def test_c_database_waits(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("C")
        s = mean_summary(crisis)
        assert _col(s, index, "heavy.db_time_ms", "q95") > 0.5
        assert _col(s, index, "cpu.iowait_pct", "q95") > 0.5

    def test_a_and_d_saturate_frontend(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        for label in ("A", "D"):
            for crisis in crises_of(label):
                s = mean_summary(crisis)
                assert _col(s, index, "frontend.queue", "q95") > 0.5, label

    def test_d_config_reloads(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("D")
        s = mean_summary(crisis)
        assert _col(s, index, "app.config_reloads", "q95") > 0

    def test_g_lock_contention(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("G")
        s = mean_summary(crisis)
        assert _col(s, index, "heavy.queue", "q95") > 0.5
        assert _col(s, index, "heavy.lock_wait_ms", "q95") > 0

    def test_f_memory_pressure(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("F")
        s = mean_summary(crisis)
        assert _col(s, index, "heavy.queue", "q95") > 0.5
        assert _col(s, index, "mem.used_pct", "q95") > 0

    def test_h_skews_quantiles(self, signature_tools):
        """Routing error: 95th percentiles hot while 25th are not."""
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("H")
        s = mean_summary(crisis)
        hot95 = _col(s, index, "heavy.queue", "q95")
        cold25 = _col(s, index, "frontend.requests", "q25")
        assert hot95 > 0.5
        assert cold25 < 0.1  # starved majority keeps the 25th from rising

    def test_j_moves_everything(self, signature_tools):
        mean_summary, crises_of, index = signature_tools
        (crisis,) = crises_of("J")
        s = mean_summary(crisis)
        for metric in ("frontend.requests", "net.in_mbps", "app.sessions"):
            assert _col(s, index, metric, "q50") > 0.5, metric

    def test_junk_metrics_stay_quiet(self, signature_tools, small_trace):
        """Noise metrics should rarely flag during crises."""
        mean_summary, crises_of, index = signature_tools
        junk_cols = [
            i for i, n in enumerate(small_trace.metric_names)
            if n.startswith("misc.noise")
        ]
        rates = []
        for crisis in small_trace.labeled_crises:
            s = mean_summary(crisis)
            rates.append(np.mean(np.abs(s[junk_cols]) > 0.5))
        assert np.mean(rates) < 0.15
