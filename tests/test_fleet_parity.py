"""Satellite acceptance: fleet output is interchangeable with PR 1's.

With ``n_shards=1`` and ``mode="exact"``, the sharded pipeline must be
*bit-identical* to :class:`CollectionPipeline` on the same reports — same
quantiles (``assert_array_equal``, no tolerance), same quality record.
With more shards it stays bit-identical (the exact merge is a multiset
union + one shared rank rule); the sketch mode stays within the combined
GK error bound.
"""

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.fleet import FleetAggregator, FleetCollectionPipeline
from repro.telemetry.collector import CollectionPipeline, EpochAggregator
from repro.telemetry.reliability import QuorumPolicy

N_METRICS = 5
METRICS = [f"metric_{j}" for j in range(N_METRICS)]
QUANTILES = (0.25, 0.50, 0.95)


def drive_pipeline(pipeline, epochs, machine_ids):
    """Feed per-epoch report matrices through agents; collect summaries."""
    summaries = []
    for matrix in epochs:
        for i, mid in enumerate(machine_ids):
            for j, name in enumerate(METRICS):
                value = matrix[i, j]
                if np.isfinite(value):
                    pipeline.agents[mid].record(name, value)
        summaries.append(pipeline.close_epoch())
    return summaries


def make_epochs(n_epochs, n_machines, seed, nan_fraction=0.03):
    rng = np.random.default_rng(seed)
    epochs = rng.lognormal(size=(n_epochs, n_machines, N_METRICS))
    epochs[rng.random(epochs.shape) < nan_fraction] = np.nan
    return epochs


@pytest.mark.parametrize("n_shards", [1, 3])
def test_exact_pipeline_bit_identical(n_shards):
    machine_ids = [f"host-{i:03d}" for i in range(40)]
    epochs = make_epochs(4, 40, seed=0)
    single = CollectionPipeline(
        machine_ids, METRICS, quantiles=QUANTILES, mode="exact"
    )
    reference = drive_pipeline(single, epochs, machine_ids)
    config = FleetConfig(n_shards=n_shards, mode="exact", batch_size=16)
    with FleetCollectionPipeline(
        machine_ids, METRICS, quantiles=QUANTILES, config=config
    ) as fleet:
        sharded = drive_pipeline(fleet, epochs, machine_ids)

    for ref, got in zip(reference, sharded):
        np.testing.assert_array_equal(got.quantiles, ref.quantiles)
        assert got.epoch == ref.epoch
        assert got.n_machines_reporting == ref.n_machines_reporting
        q_ref, q_got = ref.quality, got.quality
        assert q_got.n_reporting == q_ref.n_reporting
        assert q_got.fleet_size == q_ref.fleet_size
        assert q_got.dropped_samples == q_ref.dropped_samples
        assert q_got.n_stale_agents == q_ref.n_stale_agents
        assert q_got.n_dead_agents == q_ref.n_dead_agents
        assert q_got.quorum_met == q_ref.quorum_met
        assert q_got.coverage == q_ref.coverage
        # Shard accounting says every shard contributed.
        assert q_got.n_shards == n_shards
        assert q_got.n_shards_reporting == n_shards
        assert q_got.missing_shards == ()


def test_exact_aggregator_matches_report_by_report():
    # Same check one layer down: FleetAggregator.submit vs
    # EpochAggregator.submit on identical reports, no agents involved.
    rng = np.random.default_rng(7)
    reports = rng.normal(size=(60, N_METRICS))
    reports[rng.random(reports.shape) < 0.05] = np.nan
    single = EpochAggregator(METRICS, quantiles=QUANTILES, fleet_size=60)
    for row in reports:
        single.submit(row)
    ref = single.close_epoch()
    config = FleetConfig(n_shards=2, mode="exact", batch_size=8)
    with FleetAggregator(
        METRICS, quantiles=QUANTILES, config=config, fleet_size=60
    ) as fleet:
        for row in reports:
            fleet.submit(row)
        got = fleet.close_epoch()
    np.testing.assert_array_equal(got.quantiles, ref.quantiles)
    assert got.quality.dropped_samples == ref.quality.dropped_samples
    assert got.n_machines_reporting == ref.n_machines_reporting


def test_submit_matrix_matches_submit_rows():
    # The fast whole-matrix path and the per-report path agree.
    machine_ids = [f"host-{i:03d}" for i in range(30)]
    matrix = make_epochs(1, 30, seed=3)[0]
    config = FleetConfig(n_shards=2, mode="exact", batch_size=8)
    with FleetAggregator(
        METRICS, machine_ids=machine_ids, quantiles=QUANTILES, config=config
    ) as fleet:
        for i, mid in enumerate(machine_ids):
            fleet.submit(matrix[i], machine_id=mid)
        by_rows = fleet.close_epoch()
        fleet.submit_matrix(matrix)
        by_matrix = fleet.close_epoch()
    np.testing.assert_array_equal(by_matrix.quantiles, by_rows.quantiles)


def test_sketch_pipeline_within_eps():
    eps = 0.02
    n_machines = 600
    machine_ids = [f"host-{i:04d}" for i in range(n_machines)]
    epochs = make_epochs(2, n_machines, seed=1, nan_fraction=0.0)
    config = FleetConfig(
        n_shards=3, mode="sketch", sketch_eps=eps, batch_size=128
    )
    with FleetCollectionPipeline(
        machine_ids, METRICS, quantiles=QUANTILES, config=config
    ) as fleet:
        summaries = drive_pipeline(fleet, epochs, machine_ids)
    for e, summary in enumerate(summaries):
        for j in range(N_METRICS):
            col = np.sort(epochs[e, :, j])
            for k, q in enumerate(QUANTILES):
                rank = np.searchsorted(
                    col, summary.quantiles[j, k], side="right"
                )
                target = int(np.ceil(q * n_machines))
                # 3 equal-eps shard sketches merge to an eps-summary; the
                # admissible rank window is 2*eps*n around the target.
                assert abs(rank - target) <= 2 * eps * n_machines + 1


def test_below_quorum_all_nan_both_paths():
    machine_ids = [f"host-{i:02d}" for i in range(10)]
    quorum = QuorumPolicy(min_fraction=0.5, min_count=1)
    single = CollectionPipeline(
        machine_ids, METRICS, quantiles=QUANTILES, quorum=quorum
    )
    config = FleetConfig(n_shards=2, mode="exact")
    with FleetCollectionPipeline(
        machine_ids, METRICS, quantiles=QUANTILES, config=config,
        quorum=quorum,
    ) as fleet:
        # Only 2 of 10 machines report: below the 50% quorum.
        for pipeline in (single, fleet):
            for mid in machine_ids[:2]:
                for name in METRICS:
                    pipeline.agents[mid].record(name, 1.0)
        ref = single.close_epoch()
        got = fleet.close_epoch()
    assert not ref.quality.quorum_met and not got.quality.quorum_met
    assert np.all(np.isnan(ref.quantiles))
    np.testing.assert_array_equal(got.quantiles, ref.quantiles)
