"""OnlineClusterer unit behavior: assignment, lifecycle, snapshots."""

import numpy as np
import pytest

from repro.config import DiscoveryConfig
from repro.discovery import ClusterEvent, OnlineClusterer


def pt(x, y=0.0):
    return np.array([float(x), float(y)])


def make(radius=1.0, **over):
    config = DiscoveryConfig(assign_radius=radius, **over)
    return OnlineClusterer(2, config)


def groups(clusterer):
    """The partition as a set of frozensets (label-free comparison)."""
    return {frozenset(m) for m in clusterer.partition().values()}


class TestAssignment:
    def test_seed_then_join(self):
        c = make()
        assert c.ingest(pt(0.0), ref=1) == 0
        assert c.ingest(pt(0.5), ref=2) == 0
        assert c.ingest(pt(5.0), ref=3) == 1
        assert c.cluster_of(1) == c.cluster_of(2) == 0
        assert c.cluster_of(3) == 1
        assert groups(c) == {frozenset({1, 2}), frozenset({3})}

    def test_joins_nearest_neighbor_cluster(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(3.0), ref=2)
        # 2.1 is within radius of neither seed; 2.2 chains onto ref 2.
        c.ingest(pt(2.2), ref=3)
        assert c.cluster_of(3) == c.cluster_of(2)
        assert c.cluster_of(3) != c.cluster_of(1)

    def test_duplicate_ref_rejected(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        with pytest.raises(ValueError, match="already clustered"):
            c.ingest(pt(1.0), ref=1)

    def test_dimension_mismatch_rejected(self):
        c = make()
        with pytest.raises(ValueError, match="dimension mismatch"):
            c.ingest(np.zeros(3), ref=1)

    def test_stability_counts_evidence(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(0.2), ref=2)
        c.ingest(pt(0.4), ref=3)
        assert c.stability(0) == 3


class TestLifecycle:
    def test_bridge_point_merges_clusters(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(1.6), ref=2)
        assert len(c) == 2
        # 0.8 is within the radius of both members: single-linkage says
        # the three points are one component.
        c.ingest(pt(0.8), ref=3)
        assert len(c) == 1
        assert groups(c) == {frozenset({1, 2, 3})}
        assert any(e.kind == "merged" for e in c.events)

    def test_merge_guard_refuses_oversize_cluster(self):
        # The merged span {-0.9 .. 2.8} has dispersion 1.85 > the split
        # bound of 1.0: the bridge must NOT merge the two clusters (the
        # merge would immediately re-split).
        c = make(radius=1.0, split_fraction=1.0)
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(-0.9), ref=2)
        c.ingest(pt(1.9), ref=3)
        c.ingest(pt(2.8), ref=4)
        assert len(c) == 2
        c.ingest(pt(0.95), ref=5)  # within radius of refs 1 and 3
        assert len(c) == 2
        assert c.cluster_of(5) == c.cluster_of(1)  # nearest, lowest id

    def test_remove_dissolves_singleton(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        c.remove(1)
        assert len(c) == 0
        assert c.cluster_of(1) is None
        assert c.events[-1].kind == "dissolved"

    def test_remove_unknown_ref_raises(self):
        c = make()
        with pytest.raises(KeyError):
            c.remove(99)

    def test_remove_bridge_splits_stretched_cluster(self):
        # Chain 0 -- 0.9 -- 1.8 is one component; removing the middle
        # leaves a dispersion of 1.8 > split bound 1.5 and a medoid gap
        # of 1.8 > merge bound 0.3, so the split commits.
        c = make(radius=1.0, split_fraction=1.5, merge_fraction=0.3)
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(0.9), ref=2)
        c.ingest(pt(1.8), ref=3)
        assert len(c) == 1
        c.remove(2)
        assert groups(c) == {frozenset({1}), frozenset({3})}
        assert any(e.kind == "split" for e in c.events)

    def test_promotable_gates_on_stability_and_size(self):
        c = make(promote_stability=3, min_promote_size=3)
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(0.2), ref=2)
        assert c.promotable() == []  # size 2 < 3
        c.ingest(pt(0.4), ref=3)
        assert c.promotable() == [0]
        c.promote(0, "discovered-0")
        assert c.promotable() == []  # already promoted
        assert c.label(0) == "discovered-0"
        assert c.labels() == {0: "discovered-0"}
        assert c.cluster_of_label("discovered-0") == 0

    def test_rename_replaces_label(self):
        c = make()
        c.ingest(pt(0.0), ref=1)
        c.promote(0, "discovered-0")
        c.rename(0, "db-overload")
        assert c.label(0) == "db-overload"
        assert [e.kind for e in c.events[-2:]] == ["promoted", "renamed"]


class TestCalibration:
    def test_buffers_until_calibration_size(self):
        c = OnlineClusterer(2, DiscoveryConfig(calibration_size=4))
        assert c.ingest(pt(0.0), ref=1) is None
        assert c.ingest(pt(0.1), ref=2) is None
        assert c.n_pending == 2 and c.radius is None

    def test_auto_radius_separates_blobs(self):
        c = OnlineClusterer(2, DiscoveryConfig(calibration_size=6))
        blob_a = [pt(0.0), pt(0.2), pt(0.1, 0.1)]
        blob_b = [pt(8.0), pt(8.2), pt(8.1, 0.1)]
        for i, vec in enumerate(blob_a + blob_b):
            c.ingest(vec, ref=i)
        # Sixth fingerprint fills the buffer: calibrate + drain.
        assert c.n_pending == 0
        assert c.radius is not None and 0.3 < c.radius < 8.0
        assert groups(c) == {frozenset({0, 1, 2}), frozenset({3, 4, 5})}

    def test_flush_drains_short_stream(self):
        c = OnlineClusterer(2, DiscoveryConfig(calibration_size=100))
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(0.1), ref=2)
        c.ingest(pt(9.0), ref=3)
        assert c.n_pending == 3
        c.flush()
        assert c.n_pending == 0
        assert groups(c) == {frozenset({1, 2}), frozenset({3})}

    def test_flush_single_point_defaults_radius(self):
        c = OnlineClusterer(2, DiscoveryConfig())
        c.ingest(pt(0.0), ref=1)
        c.flush()
        assert c.radius == 1.0 and len(c) == 1


class TestSnapshot:
    def build(self):
        c = make(radius=1.0)
        rng = np.random.default_rng(3)
        for i in range(12):
            center = (i % 3) * 10.0
            c.ingest(pt(center + rng.uniform(-0.4, 0.4),
                        rng.uniform(-0.3, 0.3)), ref=i)
        c.promote(c.cluster_ids()[0], "discovered-0")
        return c

    def test_round_trip_bit_identical(self):
        c = self.build()
        header, arrays = c.snapshot()
        r = OnlineClusterer.from_snapshot(header, arrays, config=c.config)
        assert r.partition() == c.partition()
        assert r.assignments() == c.assignments()
        assert r.radius == c.radius
        assert r.events == c.events
        assert r.labels() == c.labels()
        for cid in c.cluster_ids():
            np.testing.assert_array_equal(r.medoid(cid), c.medoid(cid))
            assert r.stability(cid) == c.stability(cid)

    def test_resume_is_event_for_event_identical(self):
        c = self.build()
        header, arrays = c.snapshot()
        r = OnlineClusterer.from_snapshot(header, arrays, config=c.config)
        rng = np.random.default_rng(17)
        for i in range(12, 24):
            vec = pt((i % 3) * 10.0 + rng.uniform(-0.4, 0.4),
                     rng.uniform(-0.3, 0.3))
            assert c.ingest(vec, ref=i) == r.ingest(vec, ref=i)
        assert r.partition() == c.partition()
        assert r.events == c.events
        for cid in c.cluster_ids():
            np.testing.assert_array_equal(r.medoid(cid), c.medoid(cid))

    def test_pending_buffer_survives_snapshot(self):
        c = OnlineClusterer(2, DiscoveryConfig(calibration_size=10))
        c.ingest(pt(0.0), ref=1)
        c.ingest(pt(5.0), ref=2)
        header, arrays = c.snapshot()
        r = OnlineClusterer.from_snapshot(header, arrays, config=c.config)
        assert r.n_pending == 2 and r.radius is None
        c.flush()
        r.flush()
        assert r.partition() == c.partition()
        assert r.radius == c.radius

    def test_snapshot_prefix_namespaces_arrays(self):
        c = self.build()
        header, arrays = c.snapshot()
        prefixed = {f"discovery_{k}": v for k, v in arrays.items()}
        r = OnlineClusterer.from_snapshot(
            header, prefixed, config=c.config, prefix="discovery_"
        )
        assert r.partition() == c.partition()


def test_events_are_bounded_by_history_limit():
    c = OnlineClusterer(2, DiscoveryConfig(assign_radius=1.0,
                                           history_limit=8))
    for i in range(40):
        c.ingest(pt(i * 10.0), ref=i)
    assert len(c.events) == 8
    assert all(isinstance(e, ClusterEvent) for e in c.events)
