"""Integration tests for the simulator and the trace container.

These use the session-scoped small trace (cheap) plus a few tiny ad-hoc
runs for determinism checks.
"""

import numpy as np
import pytest

from repro.datacenter import DatacenterSimulator, SimulationConfig
from repro.datacenter.trace import RawWindow


class TestTraceStructure:
    def test_dimensions(self, small_trace):
        t = small_trace
        assert t.n_epochs == (20 + 45 + 60) * 96
        assert t.n_metrics == len(t.metric_names)
        assert t.quantiles.shape == (t.n_epochs, t.n_metrics, 3)

    def test_quantiles_ordered(self, small_trace):
        q = small_trace.quantiles
        assert np.all(q[:, :, 0] <= q[:, :, 1] + 1e-9)
        assert np.all(q[:, :, 1] <= q[:, :, 2] + 1e-9)

    def test_kpis_resolved(self, small_trace):
        t = small_trace
        assert len(t.kpi_names) == 3
        for name, idx in zip(t.kpi_names, t.kpi_metric_indices):
            assert t.metric_names[idx] == name

    def test_all_labeled_crises_detected(self, small_trace):
        labeled = [c for c in small_trace.crises if c.labeled]
        assert len(labeled) == 19
        assert all(c.detected for c in labeled)

    def test_detection_close_to_injection(self, small_trace):
        for c in small_trace.detected_crises:
            lag = c.detected_epoch - c.instance.start_epoch
            assert -2 <= lag <= 10

    def test_warmup_has_no_anomalies(self, small_trace):
        warmup = 20 * 96
        assert not small_trace.anomalous[:warmup].any()

    def test_anomalous_epochs_only_near_crises(self, small_trace):
        t = small_trace
        near = np.zeros(t.n_epochs, bool)
        for c in t.crises:
            lo = max(c.instance.start_epoch - 2, 0)
            near[lo : c.instance.end_epoch + 4] = True
        spurious = t.anomalous & ~near
        assert spurious.sum() <= t.n_epochs * 0.001

    def test_raw_windows_cover_fingerprint_span(self, small_trace):
        for c in small_trace.detected_crises:
            assert c.raw is not None
            assert c.raw.start_epoch <= c.detected_epoch - 2
            assert c.raw.end_epoch > c.detected_epoch + 4

    def test_raw_window_violations_present_in_crisis(self, small_trace):
        c = small_trace.labeled_crises[0]
        inst = c.instance
        rows = np.arange(inst.start_epoch + 1, inst.end_epoch) \
            - c.raw.start_epoch
        frac = c.raw.violations[rows].mean()
        assert frac > 0.05

    def test_crisis_free_mask_margin(self, small_trace):
        base = small_trace.crisis_free_mask()
        wide = small_trace.crisis_free_mask(margin=4)
        assert wide.sum() < base.sum()

    def test_threshold_history_excludes_anomalous(self, small_trace):
        t = small_trace
        end = t.n_epochs
        hist = t.threshold_history(end, end)
        assert hist.shape[0] == (~t.anomalous).sum()

    def test_quantile_window_bounds(self, small_trace):
        with pytest.raises(IndexError):
            small_trace.quantile_window(10, 10)


class TestDeterminism:
    CFG = dict(
        n_machines=10,
        warmup_days=6,
        bootstrap_days=12,
        labeled_days=40,
        n_bootstrap_crises=2,
        n_noise_metrics=4,
        n_drift_metrics=3,
    )

    def test_same_seed_same_trace(self):
        a = DatacenterSimulator(SimulationConfig(seed=5, **self.CFG)).run()
        b = DatacenterSimulator(SimulationConfig(seed=5, **self.CFG)).run()
        np.testing.assert_array_equal(a.quantiles, b.quantiles)
        np.testing.assert_array_equal(a.anomalous, b.anomalous)

    def test_different_seed_differs(self):
        a = DatacenterSimulator(SimulationConfig(seed=5, **self.CFG)).run()
        b = DatacenterSimulator(SimulationConfig(seed=6, **self.CFG)).run()
        assert not np.array_equal(a.quantiles, b.quantiles)

    def test_chunk_size_does_not_change_quantiles(self):
        a = DatacenterSimulator(
            SimulationConfig(seed=5, chunk_days=2, **self.CFG)
        ).run()
        b = DatacenterSimulator(
            SimulationConfig(seed=5, chunk_days=7, **self.CFG)
        ).run()
        # Chunking changes RNG consumption order, so values differ, but the
        # structural outcome (crisis schedule and detection) must match.
        assert [c.instance.start_epoch for c in a.crises] == [
            c.instance.start_epoch for c in b.crises
        ]


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_machines=0)
        with pytest.raises(ValueError):
            SimulationConfig(warmup_days=0)

    def test_total_days(self):
        cfg = SimulationConfig(
            warmup_days=10, bootstrap_days=20, labeled_days=30
        )
        assert cfg.total_days == 60


class TestRawWindow:
    def test_epoch_rows(self):
        win = RawWindow(
            start_epoch=100,
            values=np.zeros((5, 2, 3), dtype=np.float32),
            violations=np.zeros((5, 2), dtype=bool),
        )
        np.testing.assert_array_equal(win.epoch_rows([100, 104]), [0, 4])
        with pytest.raises(IndexError):
            win.epoch_rows([105])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RawWindow(0, np.zeros((5, 2)), np.zeros((5, 2), bool))
        with pytest.raises(ValueError):
            RawWindow(0, np.zeros((5, 2, 3)), np.zeros((5, 3), bool))
