"""Tests for timeline and distance-matrix renderers."""

import numpy as np
import pytest

from repro.viz import render_distance_matrix, render_timeline


class TestRenderTimeline:
    def test_marks_crisis_days(self, small_trace):
        out = render_timeline(small_trace)
        labeled = [c for c in small_trace.crises if c.labeled]
        # Every labeled type letter appears somewhere on the strip.
        for code in {c.label for c in labeled}:
            assert code in out

    def test_bootstrap_lowercase(self, small_trace):
        out = render_timeline(small_trace)
        boot = [c for c in small_trace.crises if not c.labeled]
        assert any(c.label.lower() in out for c in boot)

    def test_exclude_bootstrap(self, small_trace):
        out = render_timeline(small_trace, include_bootstrap=False)
        # No lowercase crisis letters when bootstrap markers are off.
        strip = "".join(line.split("| ")[-1]
                        for line in out.splitlines() if "|" in line)
        assert not any(ch.islower() for ch in strip if ch.isalpha())

    def test_row_wrapping(self, small_trace):
        out = render_timeline(small_trace, days_per_row=30)
        rows = [line for line in out.splitlines() if line.startswith("day")]
        n_days = small_trace.n_epochs // small_trace.epochs_per_day
        assert len(rows) == -(-n_days // 30)


class TestRenderDistanceMatrix:
    def test_close_pairs_dark(self):
        D = np.array(
            [[0.0, 0.1, 5.0], [0.1, 0.0, 5.0], [5.0, 5.0, 0.0]]
        )
        out = render_distance_matrix(D, ["B", "B", "C"])
        lines = out.splitlines()
        row_b = lines[2]  # first B row
        assert "#" in row_b  # close to the other B

    def test_diagonal_marked(self):
        D = np.zeros((2, 2))
        D[0, 1] = D[1, 0] = 1.0
        out = render_distance_matrix(D, ["A", "B"])
        assert "\\" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_distance_matrix(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            render_distance_matrix(np.zeros((2, 2)), ["a"])
        with pytest.raises(ValueError):
            render_distance_matrix(np.zeros((0, 0)), [])
