"""Tests for KPIs, SLA policies, and crisis detection."""

import numpy as np
import pytest

from repro.datacenter.sla import (
    KPIDefinition,
    SLAPolicy,
    detect_crises,
)


def policy(thresholds=(100.0, 200.0), fraction=0.10):
    kpis = tuple(
        KPIDefinition(f"kpi{j}", metric_index=j, threshold=t)
        for j, t in enumerate(thresholds)
    )
    return SLAPolicy(kpis, violation_fraction=fraction)


class TestKPIDefinition:
    def test_validation(self):
        with pytest.raises(ValueError):
            KPIDefinition("x", -1, 10.0)
        with pytest.raises(ValueError):
            KPIDefinition("x", 0, -5.0)
        with pytest.raises(ValueError):
            KPIDefinition("x", 0, float("inf"))


class TestSLAPolicy:
    def test_machine_violations_any_kpi(self):
        p = policy()
        values = np.zeros((1, 3, 2))
        values[0, 0, 0] = 150.0  # machine 0 violates kpi0
        values[0, 1, 1] = 250.0  # machine 1 violates kpi1
        v = p.machine_violations(values)
        np.testing.assert_array_equal(v[0], [True, True, False])

    def test_per_kpi_fraction(self):
        p = policy()
        values = np.zeros((1, 4, 2))
        values[0, :2, 0] = 150.0
        frac = p.per_kpi_violation_fraction(values)
        np.testing.assert_allclose(frac[0], [0.5, 0.0])

    def test_epoch_anomalous_threshold(self):
        p = policy(fraction=0.5)
        assert p.epoch_anomalous(np.array([[0.5, 0.0]]))[0]
        assert not p.epoch_anomalous(np.array([[0.49, 0.1]]))[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SLAPolicy((), 0.1)
        with pytest.raises(ValueError):
            policy(fraction=0.0)

    def test_calibrate_sets_threshold_above_reference(self):
        rng = np.random.default_rng(0)
        ref = rng.lognormal(3.0, 0.2, (200, 20, 2))
        p = SLAPolicy.calibrate(
            ["a", "b"], [5, 9], ref, percentile=99.0, margin=1.2
        )
        # Essentially no reference sample violates the calibrated SLA.
        viol = ref > p.thresholds[None, None, :]
        assert viol.mean() < 0.01
        assert p.metric_indices == [5, 9]

    def test_calibrate_validation(self):
        with pytest.raises(ValueError):
            SLAPolicy.calibrate(["a"], [0], np.zeros((5, 3)))
        with pytest.raises(ValueError):
            SLAPolicy.calibrate(["a", "b"], [0, 1], np.ones((5, 3, 1)))


class TestDetectCrises:
    def test_single_run(self):
        mask = np.zeros(30, bool)
        mask[10:15] = True
        det = detect_crises(mask, [(10, 15)])
        assert len(det) == 1
        assert det[0].detected_epoch == 10
        assert det[0].last_epoch == 14
        assert det[0].schedule_index == 0

    def test_gap_merging(self):
        mask = np.zeros(30, bool)
        mask[10:13] = True
        mask[14:17] = True  # 1-epoch dip
        det = detect_crises(mask, [(10, 17)], merge_gap=2)
        assert len(det) == 1
        assert det[0].duration_epochs == 7

    def test_gap_beyond_merge_limit_splits(self):
        mask = np.zeros(40, bool)
        mask[5:8] = True
        mask[20:23] = True
        det = detect_crises(mask, [(5, 8), (20, 23)], merge_gap=2)
        assert len(det) == 2
        assert det[1].schedule_index == 1

    def test_unmatched_run_flagged(self):
        mask = np.zeros(30, bool)
        mask[25:27] = True
        det = detect_crises(mask, [(5, 8)])
        assert det[0].schedule_index is None

    def test_detection_lag_tolerated(self):
        mask = np.zeros(30, bool)
        mask[12:18] = True  # crisis injected at 10 but detected late
        det = detect_crises(mask, [(10, 16)], match_slack=4)
        assert det[0].schedule_index == 0

    def test_no_crises(self):
        assert detect_crises(np.zeros(10, bool), []) == []
