"""Cross-plane parity: moving onto the engine changed nothing observable.

Every data plane that now routes through :mod:`repro.core.engine` — the
streaming monitor, the replay pipeline, the evaluation harness's
threshold cache, and checkpoint restore — is checked here against the
pre-refactor computation (a full trailing-window recompute through
:func:`percentile_thresholds`), event-for-event and bit-for-bit.
"""

import json
import types

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    ReliabilityConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.atomicio import unpack_header
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.engine import threshold_series_for
from repro.core.pipeline import FingerprintPipeline
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    StreamingCrisisMonitor,
)
from repro.core.thresholds import percentile_thresholds
from repro.evaluation.experiments import OnlineIdentificationExperiment
from repro.telemetry.epochs import EpochClock
from repro.telemetry.validation import validate_history

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)
RELIABILITY = ReliabilityConfig(coverage_floor=0.5)


def make_monitor(small_trace, clock=None):
    return StreamingCrisisMonitor(
        n_metrics=small_trace.n_metrics,
        relevant_metrics=list(range(12)),
        config=CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 7,
        reliability=RELIABILITY,
        clock=clock,
    )


def replay(monitor, trace, start, stop):
    frac = trace.kpi_violation_fraction.max(axis=1)
    events = []
    for epoch in range(start, stop):
        for event in monitor.ingest(trace.quantiles[epoch],
                                    float(frac[epoch])):
            events.append(event)
            if isinstance(event, CrisisEnded):
                monitor.diagnose(event.crisis_number,
                                 f"T{event.crisis_number % 4}")
    return events


def use_legacy_refresh(monitor):
    """Swap the engine's incremental refresh for the pre-refactor one:
    a full percentile recompute over the store's trailing window."""
    engine = monitor.engine

    def legacy_refresh(self):
        window, _ = self.store.trailing_window(
            len(self.store), self.window_epochs
        )
        if window.shape[0] < 2:
            return False
        cfg_t = self.config.thresholds
        self.thresholds = percentile_thresholds(
            window, cfg_t.cold_percentile, cfg_t.hot_percentile
        )
        self.version += 1
        return True

    engine.refresh_thresholds = types.MethodType(legacy_refresh, engine)


@pytest.fixture(scope="module")
def engine_run(small_trace):
    """Full replay on the engine-backed monitor."""
    monitor = make_monitor(small_trace)
    events = replay(monitor, small_trace, 0, small_trace.n_epochs)
    return monitor, events


class TestMonitorEventParity:
    def test_event_for_event_identical_to_full_recompute(self, small_trace,
                                                         engine_run):
        engine_monitor, engine_events = engine_run
        legacy = make_monitor(small_trace)
        use_legacy_refresh(legacy)
        legacy_events = replay(legacy, small_trace, 0, small_trace.n_epochs)
        # Dataclass equality covers epochs, labels, and float distances —
        # this is a bitwise claim, not a tolerance.
        assert engine_events == legacy_events
        detections = [e for e in engine_events
                      if isinstance(e, CrisisDetected)]
        assert len(detections) >= 3, "fixture trace must contain crises"
        np.testing.assert_array_equal(engine_monitor.thresholds.cold,
                                      legacy.thresholds.cold)
        np.testing.assert_array_equal(engine_monitor.thresholds.hot,
                                      legacy.thresholds.hot)


class TestThresholdSeriesParity:
    def test_matches_direct_recompute(self, small_trace):
        w = CONFIG.thresholds.window_days * small_trace.epochs_per_day
        series = threshold_series_for(small_trace, w)
        assert threshold_series_for(small_trace, w) is series, \
            "series must be shared via the trace cache"
        increasing = [900, 1200, 2000, small_trace.n_epochs]
        out_of_order = [1500, 960]  # exercise the direct-recompute fallback
        for epoch in increasing + out_of_order:
            expected = percentile_thresholds(
                small_trace.threshold_history(epoch, w)
            )
            got = series.at(epoch)
            np.testing.assert_array_equal(got.cold, expected.cold)
            np.testing.assert_array_equal(got.hot, expected.hot)

    def test_too_early_epoch_fails_like_legacy(self, small_trace):
        w = CONFIG.thresholds.window_days * small_trace.epochs_per_day
        series = threshold_series_for(small_trace, w)
        with pytest.raises(ValueError, match="not enough crisis-free"):
            series.at(0)

    def test_pipeline_thresholds_match_legacy(self, small_trace):
        pipe = FingerprintPipeline(small_trace, CONFIG)
        w = CONFIG.thresholds.window_days * small_trace.epochs_per_day
        for crisis in small_trace.detected_crises[:6]:
            pipe.observe(crisis)
            pipe.refresh(crisis.detected_epoch)
            expected = percentile_thresholds(
                small_trace.threshold_history(crisis.detected_epoch, w)
            )
            np.testing.assert_array_equal(pipe.thresholds.cold,
                                          expected.cold)
            np.testing.assert_array_equal(pipe.thresholds.hot,
                                          expected.hot)

    def test_experiment_threshold_cache_matches_legacy(self, small_trace):
        exp = OnlineIdentificationExperiment(small_trace, CONFIG)
        exp.precompute()
        w = CONFIG.thresholds.window_days * small_trace.epochs_per_day
        cache = small_trace.__dict__["_threshold_cache"]
        checked = 0
        for (epoch, window, cold_p, hot_p), thr in cache.items():
            if window != w:
                continue
            expected = percentile_thresholds(
                small_trace.threshold_history(epoch, window), cold_p, hot_p
            )
            np.testing.assert_array_equal(thr.cold, expected.cold)
            np.testing.assert_array_equal(thr.hot, expected.hot)
            checked += 1
        assert checked >= len(small_trace.labeled_crises)


class TestCheckpointCompat:
    def test_pre_engine_checkpoint_restores_and_resumes(self, small_trace,
                                                        tmp_path,
                                                        engine_run):
        """Old archives (no ``epoch_minutes`` header field) still load and
        resume bit-identically, defaulting to the paper's 15-minute epochs."""
        _, expected = engine_run
        detections = [e for e in expected if isinstance(e, CrisisDetected)]
        split = detections[1].epoch + 1

        monitor = make_monitor(small_trace)
        before = replay(monitor, small_trace, 0, split)
        path = tmp_path / "new.npz"
        save_monitor(monitor, path)

        # Rewrite the archive the way a pre-engine version wrote it.
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = unpack_header(arrays)
        assert header["epoch_minutes"] == 15
        del header["epoch_minutes"]
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        legacy_path = tmp_path / "legacy.npz"
        np.savez(legacy_path, **arrays)

        restored = load_monitor(legacy_path, CONFIG, RELIABILITY)
        assert restored.clock.epoch_minutes == 15
        after = replay(restored, small_trace, split, small_trace.n_epochs)
        assert before + after == expected


class TestNonDefaultClock:
    """Epoch lengths are derived from the clock, not hardcoded to 96/day."""

    def test_monitor_cadences_follow_clock(self, small_trace):
        clock = EpochClock(epoch_minutes=5)
        monitor = StreamingCrisisMonitor(
            n_metrics=small_trace.n_metrics,
            relevant_metrics=[0, 1, 2],
            config=CONFIG,
            clock=clock,
        )
        assert clock.per_day == 288
        assert monitor.threshold_refresh_epochs == 288
        assert monitor.min_history_epochs == 7 * 288
        assert monitor.engine.window_epochs == \
            CONFIG.thresholds.window_days * 288

    def test_checkpoint_round_trips_clock(self, small_trace, tmp_path):
        clock = EpochClock(epoch_minutes=5)
        monitor = StreamingCrisisMonitor(
            n_metrics=small_trace.n_metrics,
            relevant_metrics=[0, 1, 2],
            config=CONFIG,
            clock=clock,
        )
        for epoch in range(10):
            monitor.ingest(small_trace.quantiles[epoch], 0.0)
        path = tmp_path / "five_minute.npz"
        save_monitor(monitor, path)
        restored = load_monitor(path, CONFIG, RELIABILITY)
        assert restored.clock.epoch_minutes == 5
        assert restored.threshold_refresh_epochs == 288

    def test_validate_history_stuck_window_follows_clock(self, rng):
        # One metric frozen for the last 150 epochs: stuck at the paper's
        # 96-epoch day, not stuck over a 288-epoch (5-minute) day.
        h = rng.normal(size=(300, 3, 2))
        h[-150:, 0, :] = 7.0
        assert any(i.code == "stuck"
                   for i in validate_history(h).issues)
        report = validate_history(h, clock=EpochClock(epoch_minutes=5))
        assert not any(i.code == "stuck" for i in report.issues)
