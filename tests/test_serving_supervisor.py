"""Supervision: backoff restarts, crash-loop quarantine, isolation."""

import pytest

from repro.config import ServingConfig
from repro.serving.supervisor import (
    QUARANTINED,
    RESTARTING,
    RUNNING,
    TenantSupervisor,
)
from repro.telemetry.chaos import InjectedTenantCrash


def small_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144, window_days=2,
        threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=3, max_restarts=3,
        restart_base_delay=0.5, restart_max_delay=4.0, seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


def report(epoch, machine="m0"):
    return {
        "op": "report", "machine": machine, "epoch": epoch,
        "values": [1.0, 2.0, 3.0, 4.0], "violation": False,
    }


def close(epoch):
    return {"op": "close_epoch", "epoch": epoch}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def poison_factory(bad_tenant):
    """Crash `bad_tenant`'s engine on every report it ever applies."""
    def factory(tenant):
        if tenant != bad_tenant:
            return None

        def hook(record):
            if record["op"] == "report":
                raise InjectedTenantCrash(f"poison in {tenant}")

        return hook

    return factory


class TestHappyPath:
    def test_dispatch_applies_and_acks(self, tmp_path):
        sup = TenantSupervisor(small_cfg(), tmp_path)
        status, payload = sup.dispatch("a", report(0))
        assert status == "applied"
        status, payload = sup.dispatch("a", close(0))
        assert status == "applied"
        assert sup.slot("a").runtime.next_epoch == 1
        sup.close()

    def test_batch_pipelines_across_epoch_boundary(self, tmp_path):
        sup = TenantSupervisor(small_cfg(), tmp_path)
        batch = [report(0), close(0), report(1), close(1), report(1)]
        results = sup.dispatch_batch("a", batch)
        statuses = [s for s, _ in results]
        assert statuses == [
            "applied", "applied", "applied", "applied", "duplicate",
        ]
        sup.close()

    def test_duplicates_and_bad_epochs_not_journaled(self, tmp_path):
        sup = TenantSupervisor(small_cfg(), tmp_path)
        sup.dispatch_batch("a", [report(0), close(0)])
        before = sup.slot("a").runtime.journal.last_seq
        results = sup.dispatch_batch("a", [report(0), report(5)])
        assert [s for s, _ in results] == ["duplicate", "bad-epoch"]
        assert sup.slot("a").runtime.journal.last_seq == before
        sup.close()

    def test_diagnose_sees_crisis_ended_earlier_in_same_batch(
        self, tmp_path
    ):
        """Diagnose is classified at apply time, not against the
        pre-batch library: a pipelined batch may end a crisis and
        diagnose it in one go."""
        sup = TenantSupervisor(small_cfg(), tmp_path)
        for epoch in range(6):  # calm history arms the thresholds
            sup.dispatch_batch("a", [report(epoch), close(epoch)])
        assert sup.slot("a").runtime.monitor.ready
        # Crisis epoch: the whole (one-machine) fleet violates its SLA.
        violating = dict(report(6), violation=True, values=[9.0] * 4)
        sup.dispatch_batch("a", [violating, close(6)])
        # One pipelined batch: the calm epoch 7 ends crisis #1 (which
        # stores it in the library), and the diagnose follows directly.
        results = sup.dispatch_batch("a", [
            report(7), close(7),
            {"op": "diagnose", "crisis": 1, "label": "overload"},
        ])
        assert [s for s, _ in results] == ["applied"] * 3
        assert sup.slot("a").runtime.monitor.library_labels == ["overload"]
        # A diagnose for a crisis that never existed stays an error.
        status, _ = sup.dispatch(
            "a", {"op": "diagnose", "crisis": 99, "label": "ghost"}
        )
        assert status == "unknown-crisis"
        sup.close()

    def test_peek_never_creates_a_slot(self, tmp_path):
        sup = TenantSupervisor(small_cfg(), tmp_path)
        assert sup.peek("ghost") is None
        assert sup.tenants() == []
        sup.dispatch("a", report(0))
        assert sup.peek("a") is not None
        sup.close()


class TestCrashLoop:
    def test_poison_record_quarantines_after_max_restarts(self, tmp_path):
        clock = FakeClock()
        cfg = small_cfg(max_restarts=3)
        sup = TenantSupervisor(
            cfg, tmp_path, clock=clock,
            fault_hook_factory=poison_factory("bad"),
        )
        # Crash 1: the poison record is journaled, then apply dies.
        status, payload = sup.dispatch("bad", report(0))
        assert status == "shed"
        assert payload["retry_after"] > 0
        assert sup.slot("bad").state == RESTARTING
        # Before the backoff expires, requests are shed without work.
        status, _ = sup.dispatch("bad", report(0))
        assert status == "shed"
        assert sup.slot("bad").crash_streak == 1
        # Journal-before-ack means recovery replays the poison record:
        # each retry after backoff crashes again, up to quarantine.
        for expected_streak in (2, 3):
            clock.now += 1000.0
            status, _ = sup.dispatch("bad", report(0))
            assert sup.slot("bad").crash_streak == expected_streak
        assert sup.slot("bad").state == QUARANTINED
        status, payload = sup.dispatch("bad", report(0))
        assert status == "quarantined"
        assert "poison" in payload["detail"]
        sup.close()

    def test_healthy_tenants_unaffected_by_crash_looper(self, tmp_path):
        clock = FakeClock()
        sup = TenantSupervisor(
            small_cfg(), tmp_path, clock=clock,
            fault_hook_factory=poison_factory("bad"),
        )
        for epoch in range(3):
            sup.dispatch("bad", report(epoch))
            clock.now += 1000.0
            status, _ = sup.dispatch("good", report(epoch))
            assert status == "applied"
            status, _ = sup.dispatch("good", close(epoch))
            assert status == "applied"
        assert sup.slot("bad").state in (RESTARTING, QUARANTINED)
        assert sup.slot("good").state == RUNNING
        assert sup.slot("good").runtime.next_epoch == 3
        sup.close()

    def test_backoff_schedule_is_seeded_and_reproducible(self, tmp_path):
        def schedule(root):
            clock = FakeClock()
            sup = TenantSupervisor(
                small_cfg(seed=99), root, clock=clock,
                fault_hook_factory=poison_factory("bad"),
            )
            delays = []
            sup.dispatch("bad", report(0))
            delays.append(sup.slot("bad").next_retry_at - clock.now)
            clock.now += 1000.0
            sup.dispatch("bad", report(0))
            delays.append(sup.slot("bad").next_retry_at - clock.now)
            sup.close()
            return delays

        a = schedule(tmp_path / "a")
        b = schedule(tmp_path / "b")
        assert a == b
        # Jitter is actually applied (seeded policy, nonzero jitter).
        assert a[0] != small_cfg().restart_base_delay

    def test_clear_quarantine_gives_fresh_streak(self, tmp_path):
        clock = FakeClock()
        sup = TenantSupervisor(
            small_cfg(max_restarts=1), tmp_path, clock=clock,
            fault_hook_factory=poison_factory("bad"),
        )
        sup.dispatch("bad", report(0))
        assert sup.slot("bad").state == QUARANTINED
        with pytest.raises(KeyError):
            sup.clear_quarantine("good-tenant-never-seen")
        sup.clear_quarantine("bad")
        assert sup.slot("bad").state == RESTARTING
        assert sup.slot("bad").crash_streak == 0
        sup.close()

    def test_released_tenant_that_still_crashes_requarantines(self, tmp_path):
        """The unquarantine regression: release must grant a FULL fresh
        restart budget — and a tenant whose poison record is still in
        the journal must burn through that budget and land back in
        quarantine, not crash-loop forever or stay released."""
        clock = FakeClock()
        sup = TenantSupervisor(
            small_cfg(max_restarts=2), tmp_path, clock=clock,
            fault_hook_factory=poison_factory("bad"),
        )
        clock.now += 1000.0
        sup.dispatch("bad", report(0))
        clock.now += 1000.0
        sup.dispatch("bad", report(0))
        assert sup.slot("bad").state == QUARANTINED
        # Operator releases it; the poison record is still journaled.
        sup.clear_quarantine("bad")
        # The budget really is fresh: the first post-release crash is
        # a restart, not an immediate re-quarantine.
        clock.now += 1000.0
        status, payload = sup.dispatch("bad", report(0))
        assert status == "shed"
        assert sup.slot("bad").state == RESTARTING
        assert sup.slot("bad").crash_streak == 1
        # ...and the streak runs to the same ceiling as the first time.
        clock.now += 1000.0
        sup.dispatch("bad", report(0))
        assert sup.slot("bad").state == QUARANTINED
        assert sup.slot("bad").crash_streak == 2
        # A second release after the poison is fixed actually heals.
        sup.clear_quarantine("bad")
        sup.fault_hook_factory = None  # the restart re-derives hooks
        clock.now += 1000.0
        status, _ = sup.dispatch("bad", report(0))
        assert status in ("applied", "shed")
        sup.close()


class TestRecoveryIntegration:
    def test_adopt_existing_recovers_tenant_dirs(self, tmp_path):
        cfg = small_cfg()
        sup = TenantSupervisor(cfg, tmp_path)
        sup.dispatch_batch("a", [report(0), close(0)])
        sup.dispatch_batch("b", [report(0)])
        sup.checkpoint_all()
        sup.close()
        sup2 = TenantSupervisor(cfg, tmp_path)
        assert sup2.adopt_existing() == ["a", "b"]
        assert sup2.slot("a").runtime.next_epoch == 1
        assert sup2.slot("a").state == RUNNING
        sup2.close()

    def test_mid_epoch_checkpoint_all_keeps_acked_reports(self, tmp_path):
        """Graceful shutdown mid-epoch must not drop journaled+acked
        reports: the checkpoint carries the pending buffer through the
        compaction that follows it."""
        cfg = small_cfg()
        sup = TenantSupervisor(cfg, tmp_path)
        sup.dispatch_batch("a", [report(0), close(0), report(1)])
        sup.checkpoint_all()  # shutdown with epoch 1 still open
        sup.close()
        sup2 = TenantSupervisor(cfg, tmp_path)
        sup2.adopt_existing()
        rt = sup2.slot("a").runtime
        assert rt.next_epoch == 1
        assert sorted(rt.pending) == ["m0"]
        # Closing the epoch uses the recovered report: the summary is
        # real data, not the NaN placeholder of a silent fleet.
        status, _ = sup2.dispatch("a", close(1))
        assert status == "applied"
        assert rt.monitor.untrusted_epochs == 0
        sup2.close()

    def test_stats_shape(self, tmp_path):
        sup = TenantSupervisor(small_cfg(), tmp_path)
        sup.dispatch("a", report(0))
        stats = sup.stats()
        assert stats["a"]["state"] == RUNNING
        assert stats["a"]["applied_seq"] == 1
        sup.close()
