"""Tests for the rolling quantile store."""

import numpy as np
import pytest

from repro.telemetry.store import QuantileStore


def make_store(n=0, n_metrics=4, n_quantiles=3, anomalous_every=None):
    store = QuantileStore(n_metrics, n_quantiles, capacity_hint=16)
    rng = np.random.default_rng(0)
    for i in range(n):
        flag = anomalous_every is not None and i % anomalous_every == 0
        store.append(rng.normal(size=(n_metrics, n_quantiles)), flag)
    return store


class TestAppend:
    def test_length_tracks_appends(self):
        store = make_store(10)
        assert len(store) == 10

    def test_shape_validation(self):
        store = QuantileStore(4, 3)
        with pytest.raises(ValueError):
            store.append(np.zeros((3, 3)), False)

    def test_growth_beyond_capacity(self):
        store = make_store(100)  # capacity hint is 16
        assert len(store) == 100
        assert store.values().shape == (100, 4, 3)

    def test_extend(self):
        store = QuantileStore(2, 3)
        chunk = np.arange(2 * 2 * 3, dtype=float).reshape(2, 2, 3)
        store.extend(chunk, np.array([False, True]))
        assert len(store) == 2
        np.testing.assert_array_equal(store.epoch(1), chunk[1])
        assert store.anomalous_mask()[1]

    def test_extend_validation(self):
        store = QuantileStore(2, 3)
        with pytest.raises(ValueError):
            store.extend(np.zeros((2, 3, 3)), np.zeros(2, bool))
        with pytest.raises(ValueError):
            store.extend(np.zeros((2, 2, 3)), np.zeros(3, bool))


class TestAccess:
    def test_epoch_negative_index(self):
        store = make_store(5)
        np.testing.assert_array_equal(store.epoch(-1), store.epoch(4))

    def test_epoch_out_of_range(self):
        store = make_store(5)
        with pytest.raises(IndexError):
            store.epoch(5)

    def test_views_are_readonly(self):
        store = make_store(5)
        with pytest.raises(ValueError):
            store.values()[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            store.epoch(0)[0, 0] = 1.0


class TestTrailingWindow:
    def test_excludes_anomalous_epochs(self):
        store = make_store(20, anomalous_every=5)
        values, idx = store.trailing_window(20, 20)
        assert len(idx) == 16  # epochs 0,5,10,15 excluded
        assert values.shape[0] == 16
        assert not np.any(np.isin(idx, [0, 5, 10, 15]))

    def test_window_respects_bounds(self):
        store = make_store(20)
        values, idx = store.trailing_window(10, 5)
        np.testing.assert_array_equal(idx, np.arange(5, 10))

    def test_window_clipped_at_start(self):
        store = make_store(5)
        values, idx = store.trailing_window(5, 100)
        assert len(idx) == 5

    def test_crisis_free_false_keeps_all(self):
        store = make_store(20, anomalous_every=4)
        values, idx = store.trailing_window(20, 20, crisis_free=False)
        assert len(idx) == 20

    def test_end_out_of_range(self):
        store = make_store(5)
        with pytest.raises(IndexError):
            store.trailing_window(6, 3)
