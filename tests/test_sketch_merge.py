"""Property tests for GK sketch mergeability (the fleet's foundation).

The contract under test: merging sketches with errors eps1 and eps2
yields a sketch whose quantile answers are within ``(eps1 + eps2) * n``
ranks of the exact quantile of the *combined* stream, for adversarial
orderings — random, sorted, reverse-sorted, and duplicate-heavy — and
regardless of how the data was split between the two sketches.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.sketches import GKQuantileSketch

QUANTILES = (0.05, 0.25, 0.50, 0.75, 0.95)


def rank_error(value: float, combined_sorted: np.ndarray, q: float) -> float:
    """|empirical rank of value - target rank|, in ranks.

    The returned value's admissible ranks span [#{< value} + 1, #{<= value}]
    (any of the duplicates' positions); the error is the distance from the
    target rank ``ceil(q * n)`` to that interval.
    """
    n = combined_sorted.size
    target = max(math.ceil(q * n), 1)
    lo = int(np.searchsorted(combined_sorted, value, side="left")) + 1
    hi = int(np.searchsorted(combined_sorted, value, side="right"))
    if hi < lo:  # value not present: cannot happen, GK stores real samples
        return float("inf")
    if target < lo:
        return float(lo - target)
    if target > hi:
        return float(target - hi)
    return 0.0


def build_sketch(values, eps, ordering, rng):
    values = np.asarray(values, dtype=float)
    if ordering == "sorted":
        values = np.sort(values)
    elif ordering == "reversed":
        values = np.sort(values)[::-1]
    elif ordering == "random":
        values = rng.permutation(values)
    sketch = GKQuantileSketch(eps=eps)
    sketch.extend(values)
    return sketch


def assert_merge_bound(a_vals, b_vals, eps1, eps2, merged):
    combined = np.sort(np.concatenate([a_vals, b_vals]))
    n = combined.size
    assert len(merged) == n
    allowed = (eps1 + eps2) * n + 1.0  # +1 for the ceil discretization
    for q in QUANTILES:
        err = rank_error(merged.query(q), combined, q)
        assert err <= allowed, (
            f"q={q}: rank error {err} > ({eps1}+{eps2})*{n}+1 = {allowed}"
        )


class TestAdversarialOrderings:
    @pytest.mark.parametrize("ordering", ["random", "sorted", "reversed"])
    @pytest.mark.parametrize("eps", [0.01, 0.05])
    def test_merge_honors_combined_bound(self, ordering, eps):
        rng = np.random.default_rng(hash((ordering, eps)) % 2**32)
        a_vals = rng.normal(size=2000)
        b_vals = rng.normal(loc=1.5, scale=2.0, size=1300)
        a = build_sketch(a_vals, eps, ordering, rng)
        b = build_sketch(b_vals, eps, ordering, rng)
        assert_merge_bound(a_vals, b_vals, eps, eps, a.merge(b))

    def test_duplicate_heavy(self):
        # Long runs of identical values stress the rank bookkeeping: most
        # of the mass sits on a handful of distinct values.
        rng = np.random.default_rng(7)
        a_vals = rng.choice([0.0, 1.0, 1.0, 2.0], size=3000)
        b_vals = rng.choice([1.0, 1.0, 1.0, 5.0], size=2000)
        a = build_sketch(a_vals, 0.02, "random", rng)
        b = build_sketch(b_vals, 0.02, "sorted", rng)
        assert_merge_bound(a_vals, b_vals, 0.02, 0.02, a.merge(b))

    def test_mixed_eps(self):
        rng = np.random.default_rng(3)
        a_vals = rng.exponential(size=1500)
        b_vals = -rng.exponential(size=900)
        a = build_sketch(a_vals, 0.01, "random", rng)
        b = build_sketch(b_vals, 0.08, "reversed", rng)
        merged = a.merge(b)
        assert merged.eps == 0.08
        assert_merge_bound(a_vals, b_vals, 0.01, 0.08, merged)

    def test_from_sorted_then_chain_merge(self):
        # The shard folding path: many chunk sketches built via
        # from_sorted, chained with merge, must keep the single-eps bound
        # (the uncertainty masses add to at most 2*eps*N).
        rng = np.random.default_rng(11)
        eps = 0.02
        chunks = [rng.normal(size=rng.integers(50, 400)) for _ in range(12)]
        sketch = None
        for chunk in chunks:
            batch = GKQuantileSketch.from_sorted(np.sort(chunk), eps=eps)
            sketch = batch if sketch is None else sketch.merge(batch)
        combined = np.sort(np.concatenate(chunks))
        n = combined.size
        for q in QUANTILES:
            err = rank_error(sketch.query(q), combined, q)
            assert err <= eps * n + 1.0, f"q={q}: {err} > {eps * n + 1.0}"
        # Sketch stays sketch-sized: far fewer tuples than observations.
        assert sketch.size < n / 4


class TestMergeEdgeCases:
    def test_empty_sides(self):
        a = GKQuantileSketch(0.05)
        b = GKQuantileSketch(0.05)
        b.extend([3.0, 1.0, 2.0])
        assert len(a.merge(b)) == 3
        assert len(b.merge(a)) == 3
        assert a.merge(b).query(0.5) == 2.0
        assert len(a.merge(GKQuantileSketch(0.05))) == 0

    def test_inputs_unchanged(self):
        a = GKQuantileSketch(0.05)
        a.extend(range(100))
        b = GKQuantileSketch(0.05)
        b.extend(range(100, 150))
        size_a, size_b = a.size, b.size
        a.merge(b)
        assert (a.size, len(a)) == (size_a, 100)
        assert (b.size, len(b)) == (size_b, 50)

    def test_singletons(self):
        a = GKQuantileSketch(0.1)
        a.insert(5.0)
        b = GKQuantileSketch(0.1)
        b.insert(1.0)
        merged = a.merge(b)
        assert merged.query(0.5) == 1.0
        assert merged.query(1.0) == 5.0

    def test_from_sorted_validates(self):
        with pytest.raises(ValueError):
            GKQuantileSketch.from_sorted([3.0, 1.0], eps=0.1)
        with pytest.raises(ValueError):
            GKQuantileSketch.from_sorted([1.0, float("nan")], eps=0.1)
        assert len(GKQuantileSketch.from_sorted([], eps=0.1)) == 0


@settings(max_examples=40, deadline=None)
@given(
    a_vals=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=300
    ),
    b_vals=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300
    ),
    eps1=st.sampled_from([0.01, 0.05, 0.1]),
    eps2=st.sampled_from([0.01, 0.05, 0.1]),
    split_sorted=st.booleans(),
)
def test_merge_property(a_vals, b_vals, eps1, eps2, split_sorted):
    """Hypothesis sweep: arbitrary data splits honor the combined bound."""
    rng = np.random.default_rng(0)
    a = build_sketch(a_vals, eps1, "sorted" if split_sorted else "random", rng)
    b = build_sketch(b_vals, eps2, "random", rng)
    merged = a.merge(b)
    assert_merge_bound(
        np.asarray(a_vals, dtype=float),
        np.asarray(b_vals, dtype=float),
        eps1, eps2, merged,
    )
