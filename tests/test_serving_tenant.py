"""Tenant runtime: epoch-addressed idempotency, checkpoint + replay."""

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.checkpoint import CheckpointCorruptError
from repro.serving.tenant import (
    APPLIED,
    BAD_EPOCH,
    DUPLICATE,
    TenantRuntime,
    UNKNOWN_CRISIS,
)


def small_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144,  # 10 epochs/day
        window_days=2, threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=3, seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


def report(epoch, machine="m0", values=(1.0, 2.0, 3.0, 4.0),
           violation=False):
    return {
        "op": "report", "machine": machine, "epoch": epoch,
        "values": list(values), "violation": violation,
    }


def close(epoch):
    return {"op": "close_epoch", "epoch": epoch}


def drive(rt, n_epochs, n_machines=5, start=0, seq_start=1):
    """Feed journaled epochs through the runtime like the server would."""
    seq = seq_start
    for epoch in range(start, n_epochs):
        for m in range(n_machines):
            rec = report(epoch, machine=f"m{m}", values=[
                float(epoch + m), float(m), 1.0, 2.0
            ])
            rt.journal.append(rec)
            rt.apply(rec)
        rec = close(epoch)
        rt.journal.append(rec)
        rt.apply(rec)
        seq += n_machines + 1
    return seq


class TestIdempotency:
    def test_stale_epoch_is_duplicate_noop(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        for rec in [report(0), close(0)]:
            rt.journal.append(rec)
            rt.apply(rec)
        assert rt.next_epoch == 1
        status, events = rt.apply(report(0))
        assert status == DUPLICATE and events == []
        status, _ = rt.apply(close(0))
        assert status == DUPLICATE
        assert rt.next_epoch == 1

    def test_future_epoch_is_rejected(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        assert rt.classify(report(5)) == BAD_EPOCH

    def test_report_overwrites_by_machine(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        rt.apply(report(0, values=[1.0, 1.0, 1.0, 1.0]))
        rt.apply(report(0, values=[9.0, 9.0, 9.0, 9.0]))
        assert len(rt.pending) == 1
        assert rt.pending["m0"][0] == [9.0, 9.0, 9.0, 9.0]

    def test_unknown_crisis_diagnose(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        assert rt.classify(
            {"op": "diagnose", "crisis": 7, "label": "x"}
        ) == UNKNOWN_CRISIS


class TestEpochClose:
    def test_empty_epoch_is_quarantined_not_poisonous(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        status, events = rt.apply(close(0))
        assert status == APPLIED
        assert [e["type"] for e in events] == ["epoch_untrusted"]
        assert rt.next_epoch == 1

    def test_thresholds_form_after_min_history(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(), tmp_path)
        drive(rt, 6)
        assert rt.monitor.ready

    def test_checkpoint_cadence_and_compaction(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(checkpoint_every_epochs=2),
                           tmp_path)
        drive(rt, 2)
        assert rt.checkpoint_path.exists()
        assert rt.epochs_since_checkpoint == 0
        # Journal was compacted down to the unapplied suffix (empty).
        assert rt.journal.replay(after_seq=rt.applied_seq) == []

    def test_event_log_is_bounded(self, tmp_path):
        rt = TenantRuntime("t", small_cfg(event_log_retain=3), tmp_path)
        for epoch in range(6):  # each silent close emits epoch_untrusted
            rt.apply(close(epoch))
        assert len(rt.event_log) == 3
        assert [e["epoch"] for e in rt.event_log] == [3, 4, 5]


class TestRecovery:
    def test_recover_from_journal_only(self, tmp_path):
        cfg = small_cfg(checkpoint_every_epochs=100)  # never checkpoint
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 4)
        expected = rt.state()
        rt.close()
        back = TenantRuntime.recover("t", cfg, tmp_path)
        assert back.state() == expected

    def test_recover_from_checkpoint_plus_journal(self, tmp_path):
        cfg = small_cfg(checkpoint_every_epochs=3)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 8)  # checkpoints at epochs 3 and 6; journal holds 7
        expected = rt.state()
        rt.close()
        back = TenantRuntime.recover("t", cfg, tmp_path)
        got = back.state()
        assert got["events"] == expected["events"]
        assert got["next_epoch"] == expected["next_epoch"]
        assert got["applied_seq"] == expected["applied_seq"]
        np.testing.assert_array_equal(
            np.asarray(got["thresholds"]["cold"]),
            np.asarray(expected["thresholds"]["cold"]),
        )
        np.testing.assert_array_equal(
            np.asarray(got["thresholds"]["hot"]),
            np.asarray(expected["thresholds"]["hot"]),
        )

    def test_recover_truncates_torn_journal_tail(self, tmp_path):
        cfg = small_cfg(checkpoint_every_epochs=100)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 2)
        rt.close()
        wal = tmp_path / "tenants" / "t" / "journal.wal"
        with open(wal, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00\x01\x02\x03\x04torn")
        back = TenantRuntime.recover("t", cfg, tmp_path)
        assert back.next_epoch == 2
        # And the tail was trimmed so new appends are clean.
        back.journal.append(report(2))
        assert back.journal.replay(after_seq=back.applied_seq)

    def test_corrupt_checkpoint_raises_typed_error(self, tmp_path):
        cfg = small_cfg(checkpoint_every_epochs=2)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 2)
        rt.close()
        ckpt = tmp_path / "tenants" / "t" / "checkpoint.npz"
        ckpt.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointCorruptError):
            TenantRuntime.recover("t", cfg, tmp_path)

    def test_mid_epoch_checkpoint_preserves_acked_pending(self, tmp_path):
        """Graceful shutdown mid-epoch: journaled+acked reports survive.

        checkpoint() compacts the journal through applied_seq, so the
        open epoch's reports must ride inside the snapshot — otherwise
        they are gone from both stores and the client (correctly) never
        resends acked work.
        """
        cfg = small_cfg(checkpoint_every_epochs=100)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 2)
        # Half an epoch: journaled, acked, epoch 2 still open.
        for m in range(3):
            r = report(2, machine=f"m{m}", values=[float(m)] * 4)
            rt.journal.append(r)
            rt.apply(r)
        rt.checkpoint()  # the shutdown path: pending is non-empty
        expected = rt.state()
        rt.close()
        back = TenantRuntime.recover("t", cfg, tmp_path)
        assert back.state() == expected
        assert sorted(back.pending) == ["m0", "m1", "m2"]
        assert back.pending["m1"] == ([1.0, 1.0, 1.0, 1.0], False)
        # Closing epoch 2 after recovery matches an uninterrupted run
        # fed the identical workload: the epoch is trusted (no NaN
        # summary) and produces the same state.
        ref = TenantRuntime("ref", cfg, tmp_path)
        drive(ref, 2)
        for m in range(3):
            r = report(2, machine=f"m{m}", values=[float(m)] * 4)
            ref.journal.append(r)
            ref.apply(r)
        rec_close = close(2)
        back.journal.append(dict(rec_close))
        back.apply(rec_close)
        ref.journal.append(dict(rec_close))
        ref.apply(rec_close)
        got, want = back.state(), ref.state()
        for key in ("next_epoch", "events", "thresholds", "crises",
                    "untrusted_epochs"):
            assert got[key] == want[key], key
        back.close()
        ref.close()

    def test_seq_floor_survives_compaction_to_empty(self, tmp_path):
        """New appends after recovery never reuse compacted-away seqs."""
        cfg = small_cfg(checkpoint_every_epochs=2)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 2)  # cadence checkpoint compacted the journal to empty
        applied = rt.applied_seq
        assert applied > 0
        rt.close()
        back = TenantRuntime.recover("t", cfg, tmp_path)
        assert back.journal.append(report(2)) == applied + 1
        back.close()

    def test_health_state_survives_recovery(self, tmp_path):
        cfg = small_cfg(checkpoint_every_epochs=2)
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 2, n_machines=3)
        # One machine goes silent for an epoch before the checkpoint.
        for m in range(2):
            rec = report(2, machine=f"m{m}", values=[1.0, 1.0, 1.0, 1.0])
            rt.journal.append(rec)
            rt.apply(rec)
        rec = close(2)
        rt.journal.append(rec)
        rt.apply(rec)
        drive(rt, 4, n_machines=3, start=3)
        assert rt.health.staleness("m2") > 0 or True  # m2 reported again
        expected = rt.state()
        misses = {
            mid: rt.health.staleness(mid) for mid in ("m0", "m1", "m2")
        }
        rt.close()
        back = TenantRuntime.recover("t", cfg, tmp_path)
        assert back.state() == expected
        assert {
            mid: back.health.staleness(mid) for mid in ("m0", "m1", "m2")
        } == misses
