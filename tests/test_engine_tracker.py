"""Property tests for the incremental threshold tracker (hypothesis).

:class:`~repro.core.engine.RollingThresholdTracker` promises *bit-parity*:
over any admit/evict/NaN sequence its ``thresholds()`` must equal what
:func:`~repro.core.thresholds.percentile_thresholds` (i.e.
``np.nanpercentile``) returns over the same live window — including the
loud failures for short windows and all-NaN series.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.engine import RollingThresholdTracker
from repro.core.thresholds import percentile_thresholds

M, Q = 2, 2

# Values drawn partly from a tiny pool so exact ties (duplicate order
# statistics) are common, plus NaN gaps like real telemetry.
_value = st.one_of(
    st.sampled_from([0.0, 1.0, 2.5, -3.0]),
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    st.just(np.nan),
)
_epoch = st.tuples(
    hnp.arrays(np.float64, (M, Q), elements=_value), st.booleans()
)
_pairs = st.sampled_from(
    [(2.0, 98.0), (10.0, 90.0), (0.0, 100.0), (25.0, 75.0), (47.0, 53.0)]
)


def _live_window(epochs, window, upto):
    """The reference window: last ``window`` epochs, crisis-free only."""
    recent = epochs[max(0, upto - window):upto]
    vals = [v for v, anomalous in recent if not anomalous]
    if not vals:
        return np.empty((0, M, Q))
    return np.stack(vals)


def _check_parity(tracker, win, cold_p, hot_p):
    """Tracker output (including failures) == window recompute."""
    if win.shape[0] < 2:
        with pytest.raises(ValueError, match="at least two epochs"):
            tracker.thresholds()
        return
    flat = win.reshape(win.shape[0], -1)
    if np.all(np.isnan(flat), axis=0).any():
        with pytest.raises(ValueError, match="no reported history"):
            tracker.thresholds()
        with pytest.raises(ValueError, match="no reported history"):
            percentile_thresholds(win, cold_p, hot_p)
        return
    got = tracker.thresholds()
    expected = percentile_thresholds(win, cold_p, hot_p)
    np.testing.assert_array_equal(got.cold, expected.cold)
    np.testing.assert_array_equal(got.hot, expected.hot)
    # And against numpy directly, not just the wrapper.
    np.testing.assert_array_equal(
        got.cold.ravel(), np.nanpercentile(flat, cold_p, axis=0)
    )
    np.testing.assert_array_equal(
        got.hot.ravel(), np.nanpercentile(flat, hot_p, axis=0)
    )


class TestTrackerProperties:
    @given(st.integers(2, 9), st.lists(_epoch, min_size=1, max_size=36))
    @settings(max_examples=120, deadline=None)
    def test_random_stream_matches_window_recompute(self, window, epochs):
        """After every append the tracker equals a full recompute."""
        tracker = RollingThresholdTracker(M, Q, window)
        for i, (values, anomalous) in enumerate(epochs):
            tracker.append(values, anomalous)
            win = _live_window(epochs, window, i + 1)
            assert len(tracker) == i + 1
            assert tracker.window_count == win.shape[0]
            np.testing.assert_array_equal(tracker.window_values(), win)
            _check_parity(tracker, win, 2.0, 98.0)

    @given(
        st.integers(2, 9), st.lists(_epoch, min_size=1, max_size=30), _pairs
    )
    @settings(max_examples=100, deadline=None)
    def test_nondefault_percentile_pairs(self, window, epochs, pair):
        cold_p, hot_p = pair
        tracker = RollingThresholdTracker(M, Q, window, cold_p, hot_p)
        for values, anomalous in epochs:
            tracker.append(values, anomalous)
        _check_parity(
            tracker, _live_window(epochs, window, len(epochs)), cold_p, hot_p
        )

    @given(st.integers(2, 9), st.lists(_epoch, min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_prime_equals_streaming(self, window, epochs):
        """Bulk-loading a history == appending it epoch by epoch."""
        values = np.stack([v for v, _ in epochs])
        anomalous = np.array([a for _, a in epochs])
        streamed = RollingThresholdTracker(M, Q, window)
        for v, a in epochs:
            streamed.append(v, a)
        primed = RollingThresholdTracker(M, Q, window)
        primed.prime(values, anomalous)
        assert len(primed) == len(streamed)
        assert primed.window_count == streamed.window_count
        np.testing.assert_array_equal(
            primed.window_values(), streamed.window_values()
        )
        _check_parity(
            primed, _live_window(epochs, window, len(epochs)), 2.0, 98.0
        )
        # Both must keep evolving identically after the bulk load.
        rng = np.random.default_rng(0)
        for v in rng.normal(size=(5, M, Q)):
            streamed.append(v)
            primed.append(v)
        a, b = primed.thresholds(), streamed.thresholds()
        np.testing.assert_array_equal(a.cold, b.cold)
        np.testing.assert_array_equal(a.hot, b.hot)


class TestTrackerContracts:
    def test_drifting_stream_forces_rebuilds(self):
        """A strong trend erodes the sorted head/tail past their slack,
        exercising the rebuild path; parity must survive it."""
        rng = np.random.default_rng(7)
        W = 64
        tracker = RollingThresholdTracker(M, Q, W, 10.0, 90.0)
        history = []
        for t in range(400):
            v = np.round(rng.normal(loc=t * 0.5, size=(M, Q)), 1)
            if rng.random() < 0.08:
                v[rng.integers(M), rng.integers(Q)] = np.nan
            anomalous = rng.random() < 0.2
            history.append((v, anomalous))
            tracker.append(v, anomalous)
            if t >= 3 and t % 7 == 0:
                _check_parity(
                    tracker, _live_window(history, W, t + 1), 10.0, 90.0
                )

    def test_all_nan_series_fails_loudly(self):
        tracker = RollingThresholdTracker(M, Q, 8)
        v = np.ones((M, Q))
        v[0, 0] = np.nan
        for _ in range(4):
            tracker.append(v)
        with pytest.raises(ValueError, match="no reported history"):
            tracker.thresholds()
        # Same promise as the batch path over the same window.
        with pytest.raises(ValueError, match="no reported history"):
            percentile_thresholds(np.repeat(v[None], 4, axis=0))

    def test_needs_two_admitted_epochs(self):
        tracker = RollingThresholdTracker(M, Q, 8)
        tracker.append(np.ones((M, Q)))
        tracker.append(np.ones((M, Q)), anomalous=True)
        with pytest.raises(ValueError, match="at least two epochs"):
            tracker.thresholds()

    def test_anomalous_epochs_age_out_older_history(self):
        """Anomalous epochs advance time: they push old epochs out of the
        trailing window even though they are never admitted themselves."""
        tracker = RollingThresholdTracker(1, 1, 3)
        tracker.append(np.array([[1.0]]))
        tracker.append(np.array([[2.0]]))
        for _ in range(3):
            tracker.append(np.array([[99.0]]), anomalous=True)
        assert tracker.window_count == 0
        assert len(tracker) == 5

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="window_epochs"):
            RollingThresholdTracker(M, Q, 0)
        with pytest.raises(ValueError, match="percentile"):
            RollingThresholdTracker(M, Q, 8, 98.0, 2.0)
