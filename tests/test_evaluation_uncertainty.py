"""Tests for bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest

from repro.evaluation.identification import CrisisOutcome
from repro.evaluation.uncertainty import (
    accuracy_intervals,
    bootstrap_ci,
    mcnemar_exact,
)


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(size=100)
        ci = bootstrap_ci(values, seed=1)
        assert ci.lower <= ci.point <= ci.upper

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.uniform(size=20), seed=2)
        large = bootstrap_ci(rng.uniform(size=2000), seed=2)
        assert large.width < small.width

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=60)
        narrow = bootstrap_ci(values, confidence=0.5, seed=3)
        wide = bootstrap_ci(values, confidence=0.99, seed=3)
        assert wide.width > narrow.width

    def test_deterministic_given_seed(self):
        values = np.arange(30, dtype=float)
        a = bootstrap_ci(values, seed=7)
        b = bootstrap_ci(values, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)


class TestAccuracyIntervals:
    def make_outcomes(self, n_known=20, n_unknown=10, acc=0.8, seed=0):
        rng = np.random.default_rng(seed)
        outcomes = []
        for i in range(n_known):
            ok = rng.uniform() < acc
            seq = ("B",) * 5 if ok else ("x",) * 5
            outcomes.append(CrisisOutcome(i, "B", True, seq))
        for i in range(n_unknown):
            ok = rng.uniform() < acc
            seq = ("x",) * 5 if ok else ("B",) * 5
            outcomes.append(CrisisOutcome(100 + i, "Z", False, seq))
        return outcomes

    def test_intervals_bracket_accuracy(self):
        outcomes = self.make_outcomes()
        cis = accuracy_intervals(outcomes)
        assert set(cis) == {"known_accuracy", "unknown_accuracy"}
        for ci in cis.values():
            assert 0.0 <= ci.lower <= ci.point <= ci.upper <= 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_intervals([])


class TestMcNemar:
    def test_identical_methods_p_one(self):
        a = [True, False, True, True]
        assert mcnemar_exact(a, a) == 1.0

    def test_clear_difference_small_p(self):
        a = [True] * 30
        b = [False] * 30
        assert mcnemar_exact(a, b) < 0.01

    def test_symmetric(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(size=50) < 0.8
        b = rng.uniform(size=50) < 0.5
        assert mcnemar_exact(a, b) == pytest.approx(mcnemar_exact(b, a))

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            mcnemar_exact([True], [True, False])
