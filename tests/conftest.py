"""Shared fixtures.

The small trace fixture is session-scoped because trace generation is the
expensive step; tests must treat it as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter import DatacenterSimulator
from repro.datacenter.scenarios import tiny

SMALL_SIM_CONFIG = tiny(seed=1234)


@pytest.fixture(scope="session")
def small_trace():
    """A small but complete trace: warmup, 5 bootstrap + 19 labeled crises."""
    return DatacenterSimulator(SMALL_SIM_CONFIG).run()


@pytest.fixture()
def rng():
    return np.random.default_rng(99)
