"""ShardFolder / merge_partials: the pure aggregation core of the fleet.

These tests pin the semantics the worker pool merely transports: folding
chunks and merging partials must reproduce the single-process
``summarize_epoch`` reduction (exactly in exact mode, within the sketch
bound otherwise), however the reports are split across shards and chunks.
"""

import numpy as np
import pytest

from repro.fleet.partial import ShardFolder, merge_partials
from repro.telemetry.collector import _partial_quantiles
from repro.telemetry.quantiles import summarize_epoch

QUANTILES = (0.25, 0.50, 0.95)


def fold_split(matrix, n_shards, mode="exact", chunk=7, sketch_eps=0.02):
    """Deal rows round-robin over n_shards folders; return closed partials."""
    n_metrics = matrix.shape[1]
    folders = [
        ShardFolder(s, n_metrics, mode=mode, sketch_eps=sketch_eps)
        for s in range(n_shards)
    ]
    for s in range(n_shards):
        rows = matrix[s::n_shards]
        for start in range(0, rows.shape[0], chunk):
            part = rows[start : start + chunk]
            if part.shape[0]:
                folders[s].fold(part)
    return [f.close(epoch=0) for f in folders]


class TestExactMode:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_matches_summarize_epoch(self, n_shards):
        rng = np.random.default_rng(42)
        matrix = rng.normal(size=(101, 4))
        partials = fold_split(matrix, n_shards)
        merged = merge_partials(partials, 4, QUANTILES)
        np.testing.assert_array_equal(
            merged, summarize_epoch(matrix, QUANTILES)
        )

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_matches_nan_aware_collector_path(self, n_shards):
        # With gaps, the single-process reference is the collector's
        # NaN-aware per-metric order statistics.
        rng = np.random.default_rng(43)
        matrix = rng.normal(size=(97, 4))
        matrix[rng.random(matrix.shape) < 0.08] = np.nan
        partials = fold_split(matrix, n_shards)
        merged = merge_partials(partials, 4, QUANTILES)
        np.testing.assert_array_equal(
            merged, _partial_quantiles(matrix, QUANTILES)
        )

    def test_counts_and_drops(self):
        matrix = np.array(
            [[1.0, np.nan], [2.0, np.inf], [np.nan, 3.0]]
        )
        folder = ShardFolder(0, 2)
        folder.fold(matrix)
        partial = folder.close(epoch=5)
        assert partial.epoch == 5
        assert partial.n_reports == 3
        assert partial.dropped == 3  # one NaN, one inf, one NaN
        np.testing.assert_array_equal(partial.counts, [2, 1])
        np.testing.assert_array_equal(np.sort(partial.values[0]), [1.0, 2.0])
        np.testing.assert_array_equal(partial.values[1], [3.0])

    def test_inf_dropped_like_single_process(self):
        # EpochAggregator.submit NaNs out non-finite entries; the folder
        # must treat inf identically so parity holds on dirty data.
        matrix = np.array([[np.inf, 1.0], [2.0, -np.inf], [4.0, 8.0]])
        merged = merge_partials(fold_split(matrix, 2), 2, (0.5,))
        clean = np.where(np.isfinite(matrix), matrix, np.nan)
        np.testing.assert_array_equal(
            merged, _partial_quantiles(clean, (0.5,))
        )

    def test_empty_metric_is_nan(self):
        matrix = np.array([[1.0, np.nan], [2.0, np.nan]])
        merged = merge_partials(fold_split(matrix, 1), 2, QUANTILES)
        assert np.all(np.isfinite(merged[0]))
        assert np.all(np.isnan(merged[1]))

    def test_no_partials_is_all_nan(self):
        merged = merge_partials([], 3, QUANTILES)
        assert merged.shape == (3, 3)
        assert np.all(np.isnan(merged))

    def test_folder_resets_between_epochs(self):
        folder = ShardFolder(0, 1)
        folder.fold(np.array([[1.0], [2.0]]))
        first = folder.close(epoch=0)
        second = folder.close(epoch=1)
        assert first.n_reports == 2
        assert second.n_reports == 0
        assert second.values[0].size == 0


class TestSketchMode:
    def test_within_eps_of_exact(self):
        rng = np.random.default_rng(1)
        eps = 0.02
        matrix = rng.lognormal(size=(4000, 3))
        partials = fold_split(matrix, 4, mode="sketch", chunk=257,
                              sketch_eps=eps)
        merged = merge_partials(partials, 3, QUANTILES)
        n = matrix.shape[0]
        for j in range(3):
            col = np.sort(matrix[:, j])
            for k, q in enumerate(QUANTILES):
                # Rank distance between the sketch's answer and the target
                # rank must stay within the merged bound (4 shards of the
                # same eps still give eps overall; see test_sketch_merge).
                rank = np.searchsorted(col, merged[j, k], side="right")
                target = int(np.ceil(q * n))
                assert abs(rank - target) <= 2 * eps * n + 1

    def test_partial_size_independent_of_shard_size(self):
        rng = np.random.default_rng(2)
        small = fold_split(rng.normal(size=(500, 1)), 1, mode="sketch")[0]
        large = fold_split(rng.normal(size=(20_000, 1)), 1, mode="sketch")[0]
        # The paper's property applied to the collection tier: the wire
        # partial is O(1/eps), not O(machines).
        assert large.sketches[0].size < 4 * small.sketches[0].size
        assert large.sketches[0].size < 600

    def test_mixed_modes_rejected(self):
        exact = fold_split(np.ones((4, 1)), 1, mode="exact")
        sketch = fold_split(np.ones((4, 1)), 1, mode="sketch")
        with pytest.raises(ValueError):
            merge_partials([exact[0], sketch[0]], 1, QUANTILES)


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ShardFolder(0, 2, mode="approximate")

    def test_bad_chunk_shape(self):
        folder = ShardFolder(0, 3)
        with pytest.raises(ValueError):
            folder.fold(np.ones((4, 2)))
        with pytest.raises(ValueError):
            folder.fold(np.ones(3))

    def test_fold_seconds_recorded(self):
        folder = ShardFolder(0, 2)
        folder.fold(np.ones((100, 2)))
        assert folder.close(epoch=0).fold_seconds > 0.0
