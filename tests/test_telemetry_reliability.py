"""Tests for the fault-tolerance primitives (agent health, retry, quorum)."""

import numpy as np
import pytest

from repro.telemetry.reliability import (
    AgentHealthTracker,
    QuorumPolicy,
    RetryPolicy,
)


class TestQuorumPolicy:
    def test_fraction_rule(self):
        q = QuorumPolicy(min_fraction=0.5)
        assert q.met(5, 10)
        assert not q.met(4, 10)
        assert q.met(1, 1)

    def test_count_rule(self):
        q = QuorumPolicy(min_fraction=0.0, min_count=3)
        assert not q.met(2, 100)
        assert q.met(3, 100)

    def test_unknown_fleet_uses_count_only(self):
        q = QuorumPolicy(min_fraction=0.9, min_count=1)
        assert q.met(1, None)
        assert not q.met(0, None)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuorumPolicy(min_fraction=1.5)
        with pytest.raises(ValueError):
            QuorumPolicy(min_count=-1)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        delays = [policy.backoff(k) for k in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_deterministic_under_seed(self):
        policy = RetryPolicy(jitter=0.2)
        a = [policy.backoff(k, np.random.default_rng(3)) for k in range(4)]
        b = [policy.backoff(k, np.random.default_rng(3)) for k in range(4)]
        assert a == b
        unjittered = [policy.backoff(k) for k in range(4)]
        for got, base in zip(a, unjittered):
            assert 0.8 * base <= got <= 1.2 * base

    def test_call_retries_until_success(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("agent unreachable")
            return "delivered"

        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        result = policy.call(flaky, sleep=slept.append)
        assert result == "delivered"
        assert len(attempts) == 3
        assert slept == [policy.backoff(0), policy.backoff(1)]

    def test_call_reraises_after_final_attempt(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        with pytest.raises(ConnectionError):
            policy.call(lambda: (_ for _ in ()).throw(ConnectionError()),
                        sleep=lambda _: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestAgentHealthTracker:
    def test_misses_escalate_to_dead(self):
        tracker = AgentHealthTracker(["a", "b"], dead_after=3)
        for epoch in range(3):
            tracker.observe_report("a", epoch)
            newly_dead = tracker.close_epoch(epoch)
        assert tracker.status("a") == "healthy"
        assert tracker.status("b") == "dead"
        assert newly_dead == ["b"]
        assert tracker.staleness("b") == 3
        assert tracker.expected_fleet == 1

    def test_stale_before_dead(self):
        tracker = AgentHealthTracker(["a"], dead_after=4, stale_after=2)
        tracker.close_epoch(0)
        assert tracker.status("a") == "healthy"
        tracker.close_epoch(1)
        assert tracker.status("a") == "stale"
        assert tracker.stale_agents() == ["a"]

    def test_report_closes_breaker(self):
        tracker = AgentHealthTracker(["a"], dead_after=2)
        for epoch in range(3):
            tracker.close_epoch(epoch)
        assert tracker.dead_agents() == ["a"]
        tracker.observe_report("a", 3)
        assert tracker.status("a") == "healthy"
        assert tracker.n_dead == 0

    def test_breaker_trips_once_per_outage(self):
        tracker = AgentHealthTracker(["a"], dead_after=2)
        trips = []
        for epoch in range(5):
            trips.extend(tracker.close_epoch(epoch))
        assert trips == ["a"]  # one trip, not one per silent epoch

    def test_unknown_machine_rejected(self):
        tracker = AgentHealthTracker(["a"])
        with pytest.raises(KeyError):
            tracker.observe_report("nope", 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentHealthTracker([])
        with pytest.raises(ValueError):
            AgentHealthTracker(["a"], dead_after=0)
        with pytest.raises(ValueError):
            AgentHealthTracker(["a"], dead_after=2, stale_after=3)


class TestRetryPolicySeededJitter:
    """The injectable jitter seed (serving supervisor reproducibility)."""

    def test_default_policy_is_unchanged_without_rng(self):
        # Historical contract: no seed and no caller rng means no jitter
        # at all — deterministic geometric delays.
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=30.0)
        assert [policy.backoff(k) for k in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_seeded_policies_replay_the_same_schedule(self):
        def schedule():
            policy = RetryPolicy(base_delay=1.0, jitter=0.2, seed=99)
            return [policy.backoff(k) for k in range(6)]

        first, second = schedule(), schedule()
        assert first == second
        # And the jitter is real: the schedule is not the bare geometry.
        bare = RetryPolicy(base_delay=1.0, jitter=0.0)
        assert first != [bare.backoff(k) for k in range(6)]
        # Jitter stays inside the contract band around each bare delay.
        for got, k in zip(first, range(6)):
            center = bare.backoff(k)
            assert 0.8 * center <= got <= 1.2 * center

    def test_different_seeds_diverge(self):
        a = RetryPolicy(base_delay=1.0, jitter=0.2, seed=1)
        b = RetryPolicy(base_delay=1.0, jitter=0.2, seed=2)
        assert [a.backoff(k) for k in range(6)] != \
            [b.backoff(k) for k in range(6)]

    def test_caller_rng_takes_precedence_over_seed(self):
        seeded = RetryPolicy(base_delay=1.0, jitter=0.2, seed=7)
        unseeded = RetryPolicy(base_delay=1.0, jitter=0.2)
        assert seeded.backoff(0, rng=np.random.default_rng(0)) == \
            unseeded.backoff(0, rng=np.random.default_rng(0))
