"""Tests for unsupervised crisis-catalog discovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.catalog import (
    adjusted_rand_index,
    catalog_summary,
    cluster_crises,
    cluster_purity,
    normalized_mutual_information,
)
from repro.methods import FingerprintMethod


def blob_vectors(seed=0, centers=((0, 0), (5, 5), (10, 0)), per=4,
                 spread=0.3):
    rng = np.random.default_rng(seed)
    vectors, labels = [], []
    for k, center in enumerate(centers):
        for _ in range(per):
            vectors.append(np.array(center) + rng.normal(0, spread, 2))
            labels.append(f"type{k}")
    return vectors, labels


class TestClusterCrises:
    def test_recovers_blobs(self):
        vectors, labels = blob_vectors()
        clusters = cluster_crises(vectors, threshold=2.0)
        assert len(clusters) == 3
        assert cluster_purity(clusters, labels) == 1.0

    def test_zero_threshold_keeps_singletons(self):
        vectors, _ = blob_vectors()
        clusters = cluster_crises(vectors, threshold=0.0)
        assert len(clusters) == len(vectors)

    def test_huge_threshold_merges_everything(self):
        vectors, _ = blob_vectors()
        clusters = cluster_crises(vectors, threshold=1e9)
        assert len(clusters) == 1

    def test_linkages(self):
        vectors, labels = blob_vectors()
        for linkage in ("single", "complete", "average"):
            clusters = cluster_crises(vectors, threshold=2.0,
                                      linkage=linkage)
            assert cluster_purity(clusters, labels) == 1.0
        with pytest.raises(ValueError):
            cluster_crises(vectors, threshold=1.0, linkage="median")

    def test_medoid_is_member(self):
        vectors, _ = blob_vectors()
        for cluster in cluster_crises(vectors, threshold=2.0):
            assert cluster.medoid in cluster.members

    def test_empty_input(self):
        assert cluster_crises([], threshold=1.0) == []

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            cluster_crises([np.zeros(2)], threshold=-1.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_members_partition_input(self, seed):
        vectors, _ = blob_vectors(seed=seed)
        clusters = cluster_crises(vectors, threshold=1.5)
        seen = sorted(m for c in clusters for m in c.members)
        assert seen == list(range(len(vectors)))


class TestClusterPurity:
    def test_mixed_cluster(self):
        from repro.extensions.catalog import CrisisCluster

        clusters = [CrisisCluster(0, (0, 1, 2), 0)]
        assert cluster_purity(clusters, ["a", "a", "b"]) == pytest.approx(
            2 / 3
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cluster_purity([], [])


class TestCatalogSummary:
    def test_rows(self):
        vectors, labels = blob_vectors()
        clusters = cluster_crises(vectors, threshold=2.0)
        rows = catalog_summary(clusters, labels)
        assert len(rows) == len(clusters)
        assert all("true_labels" in r for r in rows)


class TestAdjustedRandIndex:
    def test_identical_partitions_score_one(self):
        labels = ["a", "a", "b", "b", "c"]
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_relabeling_does_not_matter(self):
        a = ["a", "a", "b", "b"]
        b = [1, 1, 0, 0]
        assert adjusted_rand_index(a, b) == 1.0

    def test_known_value_crossed_pairs(self):
        # Textbook case: [0,0,1,1] vs [0,1,0,1].  Every same-cluster
        # pair on one side is split on the other; ARI = -0.5.
        assert adjusted_rand_index(
            [0, 0, 1, 1], [0, 1, 0, 1]
        ) == pytest.approx(-0.5)

    def test_known_value_partial_agreement(self):
        # Hubert & Arabie's formula by hand: sum_ij C(n_ij,2) = 2,
        # expected = 6*3/C(6,2) = 1.2, max = (6+3)/2 = 4.5
        # -> ARI = (2 - 1.2) / (4.5 - 1.2) ≈ 0.2424.
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(0.8 / 3.3)

    def test_degenerate_partitions(self):
        # Zero chance-adjustment mass: agree -> 1.0, disagree -> 0.0.
        assert adjusted_rand_index(["x", "x"], ["y", "y"]) == 1.0
        assert adjusted_rand_index([0, 1, 2], ["a", "b", "c"]) == 1.0
        assert adjusted_rand_index([0, 0, 0], [0, 1, 2]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0])
        with pytest.raises(ValueError):
            adjusted_rand_index([], [])


class TestNormalizedMutualInformation:
    def test_identical_partitions_score_one(self):
        labels = ["a", "b", "b", "c", "c", "c"]
        assert normalized_mutual_information(
            labels, labels
        ) == pytest.approx(1.0)

    def test_independent_partitions_score_zero(self):
        # The crossed-pairs case: knowing one side says nothing about
        # the other, so mutual information is exactly zero.
        assert normalized_mutual_information(
            [0, 0, 1, 1], [0, 1, 0, 1]
        ) == pytest.approx(0.0)

    def test_trivial_sides(self):
        assert normalized_mutual_information(["x", "x"], ["y", "y"]) == 1.0
        assert normalized_mutual_information([0, 0, 0], [0, 1, 2]) == 0.0

    def test_bounded_and_symmetric(self):
        a = [0, 0, 1, 1, 2, 2, 2]
        b = [0, 1, 1, 1, 2, 0, 2]
        ab = normalized_mutual_information(a, b)
        assert 0.0 <= ab <= 1.0
        assert ab == pytest.approx(normalized_mutual_information(b, a))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            normalized_mutual_information([0, 1], [0])


class TestOnRealFingerprints:
    def test_bootstrap_catalog_mostly_pure(self, small_trace):
        """Clustering real crisis fingerprints groups same-type crises."""
        crises = small_trace.labeled_crises
        method = FingerprintMethod()
        method.fit(small_trace, crises)
        vectors = [method.vector(c) for c in crises]
        labels = [c.label for c in crises]
        clusters = cluster_crises(vectors, threshold=2.0)
        assert cluster_purity(clusters, labels) > 0.7
        # B recurs nine times; at least one multi-member cluster exists.
        assert any(c.size >= 2 for c in clusters)
