"""Tests for unsupervised crisis-catalog discovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.catalog import (
    catalog_summary,
    cluster_crises,
    cluster_purity,
)
from repro.methods import FingerprintMethod


def blob_vectors(seed=0, centers=((0, 0), (5, 5), (10, 0)), per=4,
                 spread=0.3):
    rng = np.random.default_rng(seed)
    vectors, labels = [], []
    for k, center in enumerate(centers):
        for _ in range(per):
            vectors.append(np.array(center) + rng.normal(0, spread, 2))
            labels.append(f"type{k}")
    return vectors, labels


class TestClusterCrises:
    def test_recovers_blobs(self):
        vectors, labels = blob_vectors()
        clusters = cluster_crises(vectors, threshold=2.0)
        assert len(clusters) == 3
        assert cluster_purity(clusters, labels) == 1.0

    def test_zero_threshold_keeps_singletons(self):
        vectors, _ = blob_vectors()
        clusters = cluster_crises(vectors, threshold=0.0)
        assert len(clusters) == len(vectors)

    def test_huge_threshold_merges_everything(self):
        vectors, _ = blob_vectors()
        clusters = cluster_crises(vectors, threshold=1e9)
        assert len(clusters) == 1

    def test_linkages(self):
        vectors, labels = blob_vectors()
        for linkage in ("single", "complete", "average"):
            clusters = cluster_crises(vectors, threshold=2.0,
                                      linkage=linkage)
            assert cluster_purity(clusters, labels) == 1.0
        with pytest.raises(ValueError):
            cluster_crises(vectors, threshold=1.0, linkage="median")

    def test_medoid_is_member(self):
        vectors, _ = blob_vectors()
        for cluster in cluster_crises(vectors, threshold=2.0):
            assert cluster.medoid in cluster.members

    def test_empty_input(self):
        assert cluster_crises([], threshold=1.0) == []

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            cluster_crises([np.zeros(2)], threshold=-1.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_members_partition_input(self, seed):
        vectors, _ = blob_vectors(seed=seed)
        clusters = cluster_crises(vectors, threshold=1.5)
        seen = sorted(m for c in clusters for m in c.members)
        assert seen == list(range(len(vectors)))


class TestClusterPurity:
    def test_mixed_cluster(self):
        from repro.extensions.catalog import CrisisCluster

        clusters = [CrisisCluster(0, (0, 1, 2), 0)]
        assert cluster_purity(clusters, ["a", "a", "b"]) == pytest.approx(
            2 / 3
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cluster_purity([], [])


class TestCatalogSummary:
    def test_rows(self):
        vectors, labels = blob_vectors()
        clusters = cluster_crises(vectors, threshold=2.0)
        rows = catalog_summary(clusters, labels)
        assert len(rows) == len(clusters)
        assert all("true_labels" in r for r in rows)


class TestOnRealFingerprints:
    def test_bootstrap_catalog_mostly_pure(self, small_trace):
        """Clustering real crisis fingerprints groups same-type crises."""
        crises = small_trace.labeled_crises
        method = FingerprintMethod()
        method.fit(small_trace, crises)
        vectors = [method.vector(c) for c in crises]
        labels = [c.label for c in crises]
        clusters = cluster_crises(vectors, threshold=2.0)
        assert cluster_purity(clusters, labels) > 0.7
        # B recurs nine times; at least one multi-member cluster exists.
        assert any(c.size >= 2 for c in clusters)
