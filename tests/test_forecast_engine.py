"""Forecast engine: monitor attachment, alarming, checkpoint embedding."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    ForecastConfig,
    ThresholdConfig,
)
from repro.core import checkpoint as ckpt
from repro.core.streaming import StreamingCrisisMonitor
from repro.forecast.detector import TwoStageDetector
from repro.forecast.engine import (
    ForecastAlarm,
    ForecastEngine,
    load_forecast,
    save_forecast,
)

CFG = FingerprintingConfig(thresholds=ThresholdConfig(window_days=1))


def make_monitor():
    return StreamingCrisisMonitor(
        n_metrics=5,
        relevant_metrics=[0, 1, 2],
        config=CFG,
        threshold_refresh_epochs=10,
        min_history_epochs=20,
    )


def quantile_row(rng, n_metrics=5):
    return np.sort(rng.normal(size=(n_metrics, CFG.quantiles.count)), axis=1)


def drive(monitor, rng, n, violation=0.0):
    for _ in range(n):
        monitor.ingest(quantile_row(rng), violation)


def eager_detector(dim, rng, threshold=-1.0):
    """A fitted stage-1 whose alarm threshold admits everything."""
    X = rng.normal(size=(40, dim))
    y = np.zeros(40)
    y[:20] = 1.0
    X[:20, 0] += 3.0
    det = TwoStageDetector(horizon_epochs=3, false_alarm_budget=0.5)
    det.fit(X, y, cv_folds=4, seed=0)
    det.alarm_threshold = threshold
    return det


class TestAttachment:
    def test_attach_builds_extractor_from_monitor(self):
        monitor = make_monitor()
        engine = ForecastEngine(ForecastConfig(slope_window=4))
        monitor.attach_forecast(engine)
        assert monitor.forecast is engine
        assert engine.extractor.n_cells == 3 * CFG.quantiles.count

    def test_attach_rejects_mismatched_state(self):
        monitor = make_monitor()
        engine = ForecastEngine()
        engine.attach(monitor)
        other = StreamingCrisisMonitor(
            n_metrics=5, relevant_metrics=[0], config=CFG,
            threshold_refresh_epochs=10, min_history_epochs=20,
        )
        with pytest.raises(ValueError, match="fingerprint"):
            engine.attach(other)

    def test_unattached_snapshot_raises(self):
        with pytest.raises(ValueError, match="not attached"):
            ForecastEngine().snapshot()


class TestObservation:
    def test_observes_every_epoch_scores_when_fitted(self, rng):
        monitor = make_monitor()
        engine = ForecastEngine(ForecastConfig(slope_window=4))
        monitor.attach_forecast(engine)
        drive(monitor, rng, 40)
        assert engine.epochs_observed == 40
        assert engine.epochs_scored == 0  # no detector yet
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 5)
        assert engine.epochs_scored > 0

    def test_alarm_fires_and_cooldown_suppresses(self, rng):
        monitor = make_monitor()
        engine = ForecastEngine(
            ForecastConfig(slope_window=4, cooldown_epochs=3)
        )
        monitor.attach_forecast(engine)
        drive(monitor, rng, 30)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 8)
        # With an always-on threshold, cooldown spaces alarms >= 4 apart.
        epochs = [alarm.epoch for alarm in engine.alarms]
        assert epochs, "expected at least one alarm"
        gaps = np.diff(epochs)
        assert np.all(gaps >= 4)

    def test_alarms_suppressed_during_live_crisis(self, rng):
        monitor = make_monitor()
        engine = ForecastEngine(
            ForecastConfig(slope_window=4, cooldown_epochs=0)
        )
        monitor.attach_forecast(engine)
        drive(monitor, rng, 30)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 3, violation=0.5)  # SLA breach: live crisis
        assert engine.suppressed_live > 0

    def test_alarm_retention_bounded(self, rng):
        monitor = make_monitor()
        engine = ForecastEngine(
            ForecastConfig(slope_window=4, cooldown_epochs=0,
                           alarm_retain=5)
        )
        monitor.attach_forecast(engine)
        drive(monitor, rng, 30)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 20)
        assert len(engine.alarms) <= 5
        assert engine.alarms_total > 5

    def test_stats_and_forecasts_are_wire_safe(self, rng):
        import json

        monitor = make_monitor()
        engine = ForecastEngine(ForecastConfig(slope_window=4))
        monitor.attach_forecast(engine)
        drive(monitor, rng, 25)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 5)
        json.dumps(engine.stats())
        json.dumps(engine.forecasts())


class TestCheckpointEmbedding:
    def test_round_trip_bit_identical_features(self, rng, tmp_path):
        monitor = make_monitor()
        engine = ForecastEngine(ForecastConfig(slope_window=4))
        monitor.attach_forecast(engine)
        drive(monitor, rng, 40)
        path = tmp_path / "ck.npz"
        ckpt.save_monitor(monitor, path)
        restored = ckpt.load_monitor(path, config=CFG)
        clone = restored.forecast
        assert clone is not None
        assert clone.epochs_observed == engine.epochs_observed
        q = quantile_row(rng)
        monitor.ingest(q.copy(), 0.0)
        restored.ingest(q.copy(), 0.0)
        assert engine.last_features is not None
        assert np.array_equal(
            engine.last_features, clone.last_features, equal_nan=True
        )

    def test_round_trip_preserves_alarms_and_detector(self, rng, tmp_path):
        monitor = make_monitor()
        engine = ForecastEngine(
            ForecastConfig(slope_window=4, cooldown_epochs=0)
        )
        monitor.attach_forecast(engine)
        drive(monitor, rng, 30)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        drive(monitor, rng, 5)
        assert engine.alarms
        path = tmp_path / "ck.npz"
        ckpt.save_monitor(monitor, path)
        clone = ckpt.load_monitor(path, config=CFG).forecast
        assert clone.alarms == engine.alarms
        assert clone.alarms_total == engine.alarms_total
        assert clone.detector.alarm_threshold == \
            engine.detector.alarm_threshold
        probe = rng.normal(size=engine.extractor.dim)
        assert np.array_equal(
            engine.detector.score(probe), clone.detector.score(probe)
        )

    def test_pre_forecast_checkpoint_loads_without_engine(
        self, rng, tmp_path
    ):
        monitor = make_monitor()
        drive(monitor, rng, 25)
        path = tmp_path / "old.npz"
        ckpt.save_monitor(monitor, path)
        restored = ckpt.load_monitor(path, config=CFG)
        assert restored.forecast is None


class TestStandalonePersistence:
    def test_save_load_forecast(self, rng, tmp_path):
        monitor = make_monitor()
        engine = ForecastEngine(ForecastConfig(slope_window=4))
        monitor.attach_forecast(engine)
        drive(monitor, rng, 30)
        engine.detector = eager_detector(engine.extractor.dim, rng)
        path = tmp_path / "model.npz"
        save_forecast(engine, path)
        clone = load_forecast(path)
        assert clone.monitor is None  # unattached on load
        assert clone.is_fitted
        probe = rng.normal(size=engine.extractor.dim)
        assert np.array_equal(
            engine.detector.score(probe), clone.detector.score(probe)
        )

    def test_load_rejects_wrong_kind(self, tmp_path, rng):
        monitor = make_monitor()
        drive(monitor, rng, 25)
        path = tmp_path / "monitor.npz"
        ckpt.save_monitor(monitor, path)
        with pytest.raises(ValueError):
            load_forecast(path)

    def test_alarm_to_dict(self):
        alarm = ForecastAlarm(epoch=5, score=0.9, label="B", distance=1.5)
        assert alarm.to_dict() == {
            "epoch": 5, "score": 0.9, "label": "B", "distance": 1.5,
        }
