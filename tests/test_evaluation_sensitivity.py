"""Tests for the sensitivity-analysis helpers."""

import numpy as np
import pytest

from repro.evaluation.sensitivity import (
    summary_window_sweep,
    threshold_method_sweep,
    threshold_percentile_sweep,
)
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def fitted_method(small_trace):
    method = FingerprintMethod()
    method.fit(small_trace, small_trace.labeled_crises)
    return method


class TestSummaryWindowSweep:
    def test_sweep_keys_and_range(self, small_trace, fitted_method):
        crises = small_trace.labeled_crises
        aucs = summary_window_sweep(
            small_trace, crises,
            start_offsets=(-2, 0),
            end_offsets=(1, 4),
            method=fitted_method,
        )
        assert set(aucs) == {(-2, 1), (-2, 4), (0, 1), (0, 4)}
        for v in aucs.values():
            assert 0.0 <= v <= 1.0

    def test_invalid_window_skipped(self, small_trace, fitted_method):
        aucs = summary_window_sweep(
            small_trace, small_trace.labeled_crises,
            start_offsets=(2,), end_offsets=(1,),
            method=fitted_method,
        )
        assert aucs == {}


class TestThresholdSweeps:
    def test_percentile_sweep(self, small_trace):
        crises = small_trace.labeled_crises
        out = threshold_percentile_sweep(
            small_trace, crises, pairs=((2.0, 98.0), (10.0, 90.0))
        )
        assert set(out) == {(2.0, 98.0), (10.0, 90.0)}
        for v in out.values():
            assert 0.0 <= v <= 1.0

    def test_method_sweep_contains_all_three(self, small_trace):
        out = threshold_method_sweep(small_trace,
                                     small_trace.labeled_crises)
        assert set(out) == {
            "percentile 2/98",
            "time-series +/-3 sigma",
            "KPI-correlation fit",
        }
        # The paper's chosen method should be competitive on any trace.
        assert out["percentile 2/98"] >= max(out.values()) - 0.1
