"""Tests for the streaming crisis monitor."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.identification import UNKNOWN
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.methods import FingerprintMethod

STREAM_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)


def make_monitor(small_trace, relevant):
    return StreamingCrisisMonitor(
        n_metrics=small_trace.n_metrics,
        relevant_metrics=relevant,
        config=STREAM_CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 7,
    )


@pytest.fixture(scope="module")
def replayed(small_trace):
    """Replay the whole small trace through the monitor, collecting events."""
    method = FingerprintMethod(STREAM_CONFIG)
    method.fit(small_trace, small_trace.labeled_crises)
    monitor = make_monitor(small_trace, method.relevant)

    frac = small_trace.kpi_violation_fraction.max(axis=1)
    events = []
    diagnosed = set()
    for epoch in range(small_trace.n_epochs):
        for event in monitor.ingest(small_trace.quantiles[epoch],
                                    float(frac[epoch])):
            events.append(event)
            # Operators diagnose each crisis when it ends.
            if isinstance(event, CrisisEnded):
                truth = _true_label(small_trace, event.epoch)
                if truth is not None:
                    monitor.diagnose(event.crisis_number, truth)
                    diagnosed.add(event.crisis_number)
    return monitor, events, diagnosed


def _true_label(trace, end_epoch):
    for c in trace.crises:
        if c.instance.start_epoch - 4 <= end_epoch <= \
                c.instance.end_epoch + 8:
            return c.label
    return None


class TestStreamingMonitor:
    def test_detects_most_crises(self, small_trace, replayed):
        monitor, events, _ = replayed
        detections = [e for e in events if isinstance(e, CrisisDetected)]
        n_injected = len(small_trace.detected_crises)
        assert len(detections) >= 0.8 * n_injected

    def test_every_detection_has_identifications(self, replayed):
        _, events, _ = replayed
        detections = {e.crisis_number
                      for e in events if isinstance(e, CrisisDetected)}
        idents = {}
        for e in events:
            if isinstance(e, IdentificationUpdate):
                idents.setdefault(e.crisis_number, []).append(e)
        for number in detections:
            seq = idents.get(number, [])
            assert 1 <= len(seq) <= 5
            ks = [e.identification_epoch for e in seq]
            assert ks == list(range(len(ks)))

    def test_crises_end(self, replayed):
        _, events, _ = replayed
        started = sum(isinstance(e, CrisisDetected) for e in events)
        ended = sum(isinstance(e, CrisisEnded) for e in events)
        assert ended >= started - 1  # last one may still be live

    def test_identification_improves_with_library(self, small_trace,
                                                  replayed):
        """Later crises of recurring types should sometimes be recognized."""
        monitor, events, _ = replayed
        labeled_updates = [
            e for e in events
            if isinstance(e, IdentificationUpdate) and e.label != UNKNOWN
        ]
        assert len(labeled_updates) > 0

    def test_diagnose_unknown_number_raises(self, replayed):
        monitor, _, _ = replayed
        with pytest.raises(KeyError):
            monitor.diagnose(999_999, "B")

    def test_library_has_diagnoses(self, replayed):
        monitor, _, diagnosed = replayed
        labels = [lab for lab in monitor.library_labels if lab is not None]
        assert len(labels) >= len(diagnosed) - 1


class TestMonitorValidation:
    def test_needs_relevant_metrics(self, small_trace):
        with pytest.raises(ValueError):
            StreamingCrisisMonitor(small_trace.n_metrics, [])

    def test_relevant_bounds_checked(self, small_trace):
        with pytest.raises(ValueError):
            StreamingCrisisMonitor(small_trace.n_metrics,
                                   [small_trace.n_metrics + 1])

    def test_not_ready_without_history(self, small_trace):
        monitor = make_monitor(small_trace, [0, 1, 2])
        assert not monitor.ready
        events = monitor.ingest(small_trace.quantiles[0], 0.0)
        assert events == []

    def test_no_detection_before_ready(self, small_trace):
        monitor = make_monitor(small_trace, [0, 1, 2])
        # Even an anomalous epoch cannot be detected without thresholds.
        events = monitor.ingest(small_trace.quantiles[0], 0.9)
        assert events == []

    def test_set_relevant_metrics(self, small_trace):
        monitor = make_monitor(small_trace, [0, 1])
        monitor.set_relevant_metrics([3, 4, 5])
        np.testing.assert_array_equal(monitor.relevant, [3, 4, 5])
        with pytest.raises(ValueError):
            monitor.set_relevant_metrics([])
