"""Shard planner: stable hashing, balance, and matrix batching."""

import numpy as np
import pytest

from repro.fleet.planner import (
    describe_plan,
    iter_batches,
    plan_shards,
    stable_shard,
)


def ids(n):
    return [f"host-{i:05d}" for i in range(n)]


class TestStableShard:
    def test_deterministic_across_calls(self):
        for mid in ids(50):
            assert stable_shard(mid, 8) == stable_shard(mid, 8)

    def test_respects_range(self):
        for mid in ids(200):
            for n in (1, 2, 3, 7):
                assert 0 <= stable_shard(mid, n) < n

    def test_single_shard_is_zero(self):
        assert all(stable_shard(mid, 1) == 0 for mid in ids(20))

    def test_independent_of_plan(self):
        # A report routed by machine id alone must land on the same shard
        # the plan assigned — this is what lets submit() skip the plan.
        plan = plan_shards(ids(300), 4)
        for mid, shard in zip(plan.machine_ids, plan.assignment):
            assert stable_shard(mid, 4) == shard == plan.shard_of(mid)


class TestPlanShards:
    def test_partition_is_exhaustive_and_disjoint(self):
        plan = plan_shards(ids(123), 4)
        seen = np.concatenate([np.asarray(rows) for rows in plan.rows])
        assert sorted(seen.tolist()) == list(range(123))

    def test_balance_on_real_sized_fleet(self):
        # CRC32 spreads sequential hostnames well; no shard should hold
        # more than ~1.5x its fair share at realistic fleet sizes.
        plan = plan_shards(ids(2000), 8)
        sizes = plan.sizes
        assert sizes.sum() == 2000
        assert sizes.max() <= 1.5 * (2000 / 8)
        assert plan.imbalance < 1.5

    def test_determinism(self):
        a = plan_shards(ids(97), 5)
        b = plan_shards(ids(97), 5)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        for ra, rb in zip(a.rows, b.rows):
            np.testing.assert_array_equal(ra, rb)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(["a", "b", "a"], 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([], 2)
        with pytest.raises(ValueError):
            plan_shards(ids(4), 0)

    def test_machines_lookup(self):
        plan = plan_shards(ids(40), 3)
        for shard in range(3):
            for mid in plan.machines(shard):
                assert plan.shard_of(mid) == shard

    def test_describe_mentions_every_shard(self):
        text = describe_plan(plan_shards(ids(100), 4))
        for shard in range(4):
            assert f"shard {shard:3d}" in text


class TestIterBatches:
    def test_covers_matrix_in_order(self):
        matrix = np.arange(20.0).reshape(10, 2)
        chunks = list(iter_batches(matrix, 3))
        assert [c.shape[0] for c in chunks] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.vstack(chunks), matrix)

    def test_single_batch_when_small(self):
        matrix = np.ones((4, 5))
        chunks = list(iter_batches(matrix, 100))
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0], matrix)

    def test_empty_matrix(self):
        assert list(iter_batches(np.empty((0, 3)), 8)) == []
