"""Tests for the streaming quantile estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.quantiles import empirical_quantiles
from repro.telemetry.sketches import GKQuantileSketch, P2QuantileEstimator


class TestGKSketch:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            GKQuantileSketch(eps=0.0)
        with pytest.raises(ValueError):
            GKQuantileSketch(eps=1.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            GKQuantileSketch().query(0.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            GKQuantileSketch().insert(float("nan"))

    def test_exact_on_small_stream(self):
        sk = GKQuantileSketch(eps=0.01)
        vals = [5.0, 1.0, 9.0, 3.0, 7.0]
        sk.extend(vals)
        assert sk.query(0.5) == 5.0

    @pytest.mark.parametrize("q", [0.05, 0.25, 0.5, 0.95])
    def test_rank_error_bound(self, q):
        rng = np.random.default_rng(7)
        vals = rng.normal(size=5000)
        eps = 0.02
        sk = GKQuantileSketch(eps=eps)
        sk.extend(vals)
        est = sk.query(q)
        # Rank of estimate must be within eps*n of target rank.
        rank = np.sum(np.sort(vals) <= est)
        target = max(int(np.ceil(q * len(vals))), 1)
        assert abs(rank - target) <= 2 * eps * len(vals)

    def test_space_sublinear(self):
        rng = np.random.default_rng(8)
        sk = GKQuantileSketch(eps=0.05)
        sk.extend(rng.normal(size=20000))
        assert sk.size < 2000  # far below n

    def test_monotone_queries(self):
        rng = np.random.default_rng(9)
        sk = GKQuantileSketch(eps=0.02)
        sk.extend(rng.uniform(size=3000))
        qs = [sk.query(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert qs == sorted(qs)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                    min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_query_returns_observed_value(self, vals):
        sk = GKQuantileSketch(eps=0.05)
        sk.extend(vals)
        assert sk.query(0.5) in vals


class TestP2Estimator:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2QuantileEstimator(0.0)
        with pytest.raises(ValueError):
            P2QuantileEstimator(1.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            P2QuantileEstimator(0.5).query()

    def test_small_sample_exact(self):
        est = P2QuantileEstimator(0.5)
        est.extend([3.0, 1.0, 2.0])
        assert est.query() == 2.0

    @pytest.mark.parametrize("q", [0.25, 0.5, 0.95])
    def test_converges_on_uniform(self, q):
        rng = np.random.default_rng(10)
        est = P2QuantileEstimator(q)
        vals = rng.uniform(size=20000)
        est.extend(vals)
        truth = empirical_quantiles(vals, [q])[0]
        assert abs(est.query() - truth) < 0.03

    def test_converges_on_lognormal(self):
        rng = np.random.default_rng(11)
        est = P2QuantileEstimator(0.5)
        vals = rng.lognormal(0.0, 1.0, size=30000)
        est.extend(vals)
        truth = float(np.median(vals))
        assert abs(est.query() - truth) / truth < 0.08

    def test_constant_space(self):
        est = P2QuantileEstimator(0.9)
        est.extend(range(10000))
        assert len(est._heights) == 5
