"""Tests for the workload model."""

import numpy as np
import pytest

from repro.datacenter.workload import WorkloadConfig, WorkloadModel
from repro.telemetry.epochs import EpochClock


def series(n_days=14, seed=0, **kwargs):
    cfg = WorkloadConfig(**kwargs)
    clock = EpochClock()
    return WorkloadModel(cfg, clock).generate(
        n_days * clock.per_day, np.random.default_rng(seed)
    )


class TestWorkloadModel:
    def test_mean_near_one(self):
        w = series(28, growth=0.0)
        assert 0.8 < w.mean() < 1.2

    def test_positive(self):
        assert np.all(series(28) > 0)

    def test_diurnal_peak_hour(self):
        cfg = WorkloadConfig(noise_sigma=0.0, slow_sigma=0.0, growth=0.0,
                             weekend_factor=1.0)
        clock = EpochClock()
        w = WorkloadModel(cfg, clock).generate(
            clock.per_day, np.random.default_rng(0)
        )
        peak_epoch = int(np.argmax(w))
        peak_hour = peak_epoch * 24 / clock.per_day
        assert abs(peak_hour - cfg.peak_hour) < 1.0

    def test_weekend_dip(self):
        w = series(28, noise_sigma=0.0, slow_sigma=0.0, growth=0.0)
        clock = EpochClock()
        day = np.arange(len(w)) // clock.per_day
        weekend = (day % 7) >= 5
        assert w[weekend].mean() < w[~weekend].mean()

    def test_growth_trend(self):
        w = series(60, noise_sigma=0.0, slow_sigma=0.0, growth=0.2,
                   weekend_factor=1.0)
        n = len(w)
        assert w[-n // 10 :].mean() > w[: n // 10].mean() * 1.1

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(series(7, seed=5), series(7, seed=5))

    def test_different_seeds_differ(self):
        assert not np.array_equal(series(7, seed=1), series(7, seed=2))

    def test_rejects_nonpositive_length(self):
        model = WorkloadModel(WorkloadConfig(), EpochClock())
        with pytest.raises(ValueError):
            model.generate(0, np.random.default_rng(0))


class TestWorkloadConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"diurnal_amplitude": 1.5},
            {"weekend_factor": 0.0},
            {"noise_sigma": -0.1},
            {"slow_rho": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)
