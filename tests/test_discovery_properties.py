"""Property tests: order invariance and merge/split hysteresis.

Two properties the clusterer's design arguments rest on:

* **Permutation invariance** — with the lifecycle rules quiescent the
  partition is the connected components of the radius graph, which no
  ingestion order can change.  Hypothesis drives well-separated blobs
  through every permutation it can find.
* **Hysteresis bound** — the merge guard (merged cluster must satisfy
  the split bound) and the split guard (new medoids must exceed the
  merge bound) are each other's negation band, so adding and removing
  the same bridge evidence cannot cascade: every operation settles
  within a constant number of lifecycle events, never an oscillation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DiscoveryConfig
from repro.discovery import OnlineClusterer

#: Blob centers far enough apart that no radius-1 chain can connect
#: them; offsets below keep each blob's diameter under the radius.
CENTERS = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])

offsets = st.tuples(
    st.integers(-35, 35), st.integers(-35, 35)
).map(lambda t: np.array([t[0] / 100.0, t[1] / 100.0]))

points = st.lists(
    st.tuples(st.integers(0, len(CENTERS) - 1), offsets),
    min_size=2, max_size=16,
)


def groups(clusterer):
    return {frozenset(m) for m in clusterer.partition().values()}


def ingest_all(order, pts):
    clusterer = OnlineClusterer(2, DiscoveryConfig(assign_radius=1.0))
    for ref in order:
        blob, offset = pts[ref]
        clusterer.ingest(CENTERS[blob] + offset, ref=ref)
    return clusterer


@settings(max_examples=60, deadline=None)
@given(pts=points, data=st.data())
def test_partition_is_permutation_invariant(pts, data):
    """Same points, any order -> same partition (up to cluster ids)."""
    n = len(pts)
    order = data.draw(st.permutations(range(n)))
    baseline = ingest_all(range(n), pts)
    shuffled = ingest_all(order, pts)
    assert groups(shuffled) == groups(baseline)
    # And the blobs really are what gets recovered: every cluster's
    # members come from a single blob.
    for members in baseline.partition().values():
        assert len({pts[ref][0] for ref in members}) == 1


@settings(max_examples=40, deadline=None)
@given(
    separation=st.integers(16, 28).map(lambda s: s / 10.0),
    cycles=st.integers(2, 6),
)
def test_bridge_churn_has_bounded_hysteresis(separation, cycles):
    """Adding/removing the same bridge evidence cannot oscillate.

    Two blobs sit ``separation`` apart (bridgeable: < 2 * radius); a
    bridge point between them is inserted and retracted repeatedly.
    Each insert/remove settles in at most a handful of lifecycle
    events — a cascade (merge undone by an immediate split, re-merged,
    ...) would blow through the per-operation bound at once.
    """
    config = DiscoveryConfig(assign_radius=1.0)
    clusterer = OnlineClusterer(2, config)
    left = [np.array([0.0, 0.0]), np.array([0.2, 0.1])]
    right = [
        np.array([separation, 0.0]), np.array([separation - 0.2, -0.1])
    ]
    for i, vec in enumerate(left + right):
        clusterer.ingest(vec, ref=i)
    bridge = np.array([separation / 2.0, 0.0])

    def normalized(ref):
        """The partition with the cycle's bridge ref made anonymous."""
        return frozenset(
            frozenset("bridge" if r == ref else r for r in members)
            for members in clusterer.partition().values()
        )

    partitions = []
    for cycle in range(cycles):
        ref = 100 + cycle
        before = len(clusterer.events)
        clusterer.ingest(bridge, ref=ref)
        assert len(clusterer.events) - before <= 4
        with_bridge = normalized(ref)

        before = len(clusterer.events)
        clusterer.remove(ref)
        assert len(clusterer.events) - before <= 4
        partitions.append((with_bridge, normalized(ref)))

    # Deterministic fixpoint: every cycle lands in the same two states,
    # so repeated churn cannot drift or oscillate further.
    assert len(set(partitions)) == 1


@settings(max_examples=40, deadline=None)
@given(pts=points)
def test_remove_all_in_any_order_empties_cleanly(pts):
    clusterer = ingest_all(range(len(pts)), pts)
    for ref in reversed(range(len(pts))):
        clusterer.remove(ref)
    assert len(clusterer) == 0
    assert clusterer.assignments() == {}
