"""Tests for repro.telemetry.quantiles, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import QuantileConfig
from repro.telemetry.quantiles import (
    QuantileSummarizer,
    empirical_quantiles,
    summarize_chunk,
    summarize_epoch,
)


class TestEmpiricalQuantiles:
    def test_median_of_odd_sample(self):
        vals = np.array([5.0, 1.0, 3.0])
        assert empirical_quantiles(vals, [0.5])[0] == 3.0

    def test_order_statistic_definition(self):
        # ceil(N*p)-th ordered value: N=4, p=0.25 -> 1st value.
        vals = np.array([10.0, 20.0, 30.0, 40.0])
        np.testing.assert_array_equal(
            empirical_quantiles(vals, [0.25, 0.5, 0.95]),
            [10.0, 20.0, 40.0],
        )

    def test_extremes(self):
        vals = np.arange(10.0)
        assert empirical_quantiles(vals, [0.0])[0] == 0.0
        assert empirical_quantiles(vals, [1.0])[0] == 9.0

    def test_nan_samples_dropped(self):
        vals = np.array([np.nan, 1.0, 2.0, np.nan, 3.0])
        assert empirical_quantiles(vals, [0.5])[0] == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_quantiles(np.array([]), [0.5])
        with pytest.raises(ValueError):
            empirical_quantiles(np.array([np.nan]), [0.5])

    def test_invalid_quantile_raises(self):
        with pytest.raises(ValueError):
            empirical_quantiles(np.array([1.0]), [1.5])

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 60),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_result_is_observed_value_with_correct_mass(self, vals, q):
        x = empirical_quantiles(vals, [q])[0]
        assert x in vals
        # At least a fraction q of samples are <= x.
        assert np.mean(vals <= x) >= q - 1e-12


class TestSummarizeEpoch:
    def test_shape(self):
        samples = np.random.default_rng(0).normal(size=(50, 7))
        out = summarize_epoch(samples, [0.25, 0.5, 0.95])
        assert out.shape == (7, 3)

    def test_matches_per_metric_computation(self):
        rng = np.random.default_rng(1)
        samples = rng.gamma(2.0, 3.0, size=(33, 5))
        out = summarize_epoch(samples, [0.25, 0.5, 0.95])
        for m in range(5):
            np.testing.assert_array_equal(
                out[m], empirical_quantiles(samples[:, m], [0.25, 0.5, 0.95])
            )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            summarize_epoch(np.zeros(5), [0.5])
        with pytest.raises(ValueError):
            summarize_epoch(np.zeros((0, 3)), [0.5])


class TestSummarizeChunk:
    def test_matches_epoch_by_epoch(self):
        rng = np.random.default_rng(2)
        chunk = rng.normal(size=(4, 20, 6))
        out = summarize_chunk(chunk, [0.25, 0.5, 0.95])
        assert out.shape == (4, 6, 3)
        for e in range(4):
            np.testing.assert_array_equal(
                out[e], summarize_epoch(chunk[e], [0.25, 0.5, 0.95])
            )

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            summarize_chunk(np.zeros((3, 4)), [0.5])


class TestQuantileSummarizer:
    def test_uses_config(self):
        s = QuantileSummarizer(QuantileConfig(quantiles=(0.5,)))
        out = s.epoch(np.arange(12.0).reshape(6, 2))
        assert out.shape == (2, 1)

    def test_scaling_independent_of_machines(self):
        """The summary size depends on metrics, never on machine count."""
        s = QuantileSummarizer()
        few = s.epoch(np.random.default_rng(3).normal(size=(10, 4)))
        many = s.epoch(np.random.default_rng(3).normal(size=(500, 4)))
        assert few.shape == many.shape == (4, 3)
