"""Tests for the evaluation harness: scoring, experiments, results."""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.evaluation.discrimination import discrimination_auc
from repro.evaluation.experiments import (
    OfflineIdentificationExperiment,
    OnlineIdentificationExperiment,
    default_initial_set,
)
from repro.evaluation.identification import (
    CrisisOutcome,
    IdentificationCurves,
    score_outcomes,
)
from repro.evaluation.results import format_percent, format_table
from repro.methods import FingerprintMethod

SMALL_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=15),
)


class TestCrisisOutcome:
    def test_known_accurate(self):
        o = CrisisOutcome(1, "B", True, ("x", "B", "B", "B", "B"))
        assert o.accurate
        assert o.time_to_identification_minutes == 15.0

    def test_known_all_unknown_is_miss(self):
        o = CrisisOutcome(1, "B", True, ("x",) * 5)
        assert not o.accurate

    def test_known_unstable_is_miss(self):
        o = CrisisOutcome(1, "B", True, ("A", "B", "B", "B", "B"))
        assert not o.accurate
        assert o.time_to_identification_minutes is None

    def test_unknown_accurate_only_if_all_x(self):
        assert CrisisOutcome(1, "Z", False, ("x",) * 5).accurate
        assert not CrisisOutcome(1, "Z", False,
                                 ("x", "B", "B", "B", "B")).accurate

    def test_immediate_identification_time_zero(self):
        o = CrisisOutcome(1, "B", True, ("B",) * 5)
        assert o.time_to_identification_minutes == 0.0


class TestScoreOutcomes:
    def test_aggregation(self):
        outcomes = [
            CrisisOutcome(0, "B", True, ("B",) * 5),
            CrisisOutcome(1, "B", True, ("x",) * 5),
            CrisisOutcome(2, "Z", False, ("x",) * 5),
            CrisisOutcome(3, "Y", False, ("B",) * 5),
        ]
        s = score_outcomes(outcomes)
        assert s.known_accuracy == 0.5
        assert s.unknown_accuracy == 0.5
        assert s.n_known == 2 and s.n_unknown == 2
        assert s.mean_time_minutes == 0.0
        assert s.stability_rate == 1.0

    def test_empty_known_gives_nan(self):
        s = score_outcomes([CrisisOutcome(0, "Z", False, ("x",) * 5)])
        assert np.isnan(s.known_accuracy)
        assert s.unknown_accuracy == 1.0


class TestIdentificationCurves:
    def test_operating_point_picks_crossing(self):
        curves = IdentificationCurves(alphas=np.array([0.0, 0.5, 1.0]))
        from repro.evaluation.identification import IdentificationScore

        curves.scores = [
            IdentificationScore(0.2, 1.0, 0.0, 5, 5, 1.0),
            IdentificationScore(0.8, 0.8, 0.0, 5, 5, 1.0),
            IdentificationScore(1.0, 0.1, 0.0, 5, 5, 1.0),
        ]
        op = curves.operating_point()
        assert op["alpha"] == 0.5
        assert op["known_accuracy"] == 0.8


class TestDefaultInitialSet:
    def test_composition(self, small_trace):
        crises = small_trace.labeled_crises
        rng = np.random.default_rng(0)
        initial = default_initial_set(crises, rng)
        labels = [crises[i].label for i in initial]
        assert len(initial) == 5
        assert labels.count("B") >= 2
        assert "A" in labels


@pytest.fixture(scope="module")
def offline_curves(small_trace):
    method = FingerprintMethod(
        FingerprintingConfig(selection=SelectionConfig(n_relevant=15))
    )
    crises = small_trace.labeled_crises
    method.fit(small_trace, crises)
    exp = OfflineIdentificationExperiment(
        method, crises, n_runs=3, seed=0,
        alphas=np.array([0.0, 0.05, 0.1, 0.3, 0.6, 1.0]),
    )
    return exp.run(), method, crises


class TestOfflineExperiment:
    def test_curve_lengths(self, offline_curves):
        curves, _, _ = offline_curves
        assert len(curves.scores) == 6

    def test_unknown_accuracy_decreases_with_alpha(self, offline_curves):
        curves, _, _ = offline_curves
        u = curves.unknown_accuracy
        assert u[0] >= u[-1]

    def test_alpha_one_matches_everything(self, offline_curves):
        curves, _, _ = offline_curves
        # At alpha=1 every nearest neighbor is below threshold, so no
        # unknown crisis can be labeled unknown.
        assert curves.unknown_accuracy[-1] <= 0.05

    def test_reasonable_accuracy(self, offline_curves):
        curves, _, _ = offline_curves
        op = curves.operating_point()
        assert (op["known_accuracy"] + op["unknown_accuracy"]) / 2 > 0.5

    def test_discrimination_auc(self, offline_curves):
        _, method, crises = offline_curves
        assert discrimination_auc(method, crises) > 0.8


class TestOnlineExperiment:
    @pytest.fixture(scope="class")
    def exp(self, small_trace):
        return OnlineIdentificationExperiment(small_trace, SMALL_CONFIG)

    def test_precompute_parameters(self, exp):
        params = exp.precompute()
        assert len(params) == len(exp.labeled)
        p = params[-1]
        assert len(p.relevant) == 20
        assert p.full.shape == (len(exp.labeled), 20 * 3)
        assert p.trunc_distances.shape[0] == 5

    def test_online_run_shapes(self, exp):
        curves = exp.run(mode="online", bootstrap=2, n_runs=3,
                         alphas=np.array([0.1, 0.5]), seed=0)
        assert len(curves.scores) == 2
        assert curves.scores[0].n_known + curves.scores[0].n_unknown > 0

    def test_quasi_mode(self, exp):
        curves = exp.run(mode="quasi-online", bootstrap=2, n_runs=2,
                         alphas=np.array([0.1]), seed=0)
        assert len(curves.scores) == 1

    def test_bad_mode_rejected(self, exp):
        with pytest.raises(ValueError):
            exp.run(mode="nope")

    def test_bad_bootstrap_rejected(self, exp):
        with pytest.raises(ValueError):
            exp.run(bootstrap=0)
        with pytest.raises(ValueError):
            exp.run(bootstrap=len(exp.labeled))


class TestResultsFormatting:
    def test_format_table(self):
        text = format_table(["a", "b"], [["x", 1.5], ["y", float("nan")]],
                            title="T")
        assert text.startswith("T")
        assert "1.500" in text
        assert "-" in text

    def test_format_percent(self):
        assert format_percent(0.805) == "80%"
        assert format_percent(float("nan")) == "-"
