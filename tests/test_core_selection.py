"""Tests for relevant-metric selection."""

import numpy as np
import pytest

from repro.core.selection import (
    crisis_training_set,
    select_crisis_metrics,
    select_relevant_metrics,
    stabilize,
)


def synthetic_crisis(seed=0, n_epochs=20, n_machines=15, n_metrics=12,
                     signal=(2, 7), crisis_start=12):
    """Raw window where metrics in ``signal`` move on violating machines."""
    rng = np.random.default_rng(seed)
    values = rng.lognormal(2.0, 0.3, (n_epochs, n_machines, n_metrics))
    violations = np.zeros((n_epochs, n_machines), dtype=bool)
    affected = rng.choice(n_machines, size=n_machines // 2, replace=False)
    for e in range(crisis_start, n_epochs):
        violations[e, affected] = True
        for m in signal:
            values[e, affected, m] *= 12.0
    return values, violations, set(signal)


class TestStabilize:
    def test_monotone(self):
        x = np.array([0.0, 1.0, 10.0, 1e6])
        out = stabilize(x)
        assert np.all(np.diff(out) > 0)

    def test_sign_preserved(self):
        np.testing.assert_allclose(stabilize(np.array([-5.0])),
                                   -stabilize(np.array([5.0])))

    def test_compresses_tails(self):
        assert stabilize(np.array([1e9]))[0] < 25


class TestCrisisTrainingSet:
    def test_shapes(self):
        values, violations, _ = synthetic_crisis()
        X, y = crisis_training_set(values, violations)
        assert X.shape == (20 * 15, 12)
        assert y.shape == (20 * 15,)

    def test_label_alignment(self):
        values, violations, _ = synthetic_crisis()
        X, y = crisis_training_set(values, violations)
        # Row for (epoch e, machine m) is e*n_machines + m.
        assert y[13 * 15 + 3] == float(violations[13, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            crisis_training_set(np.zeros((3, 4)), np.zeros((3, 4), bool))
        with pytest.raises(ValueError):
            crisis_training_set(np.zeros((3, 4, 5)), np.zeros((3, 5), bool))


class TestSelectCrisisMetrics:
    def test_finds_signal_metrics(self):
        values, violations, signal = synthetic_crisis()
        picked = select_crisis_metrics(values, violations, top_k=4)
        assert signal <= set(picked.tolist())

    def test_exclude_removes_metrics(self):
        values, violations, signal = synthetic_crisis()
        picked = select_crisis_metrics(
            values, violations, top_k=4, exclude=[2]
        )
        assert 2 not in picked

    def test_no_violations_returns_empty(self):
        values, violations, _ = synthetic_crisis()
        picked = select_crisis_metrics(
            values, np.zeros_like(violations), top_k=4
        )
        assert picked.size == 0

    def test_respects_top_k(self):
        values, violations, _ = synthetic_crisis()
        assert len(select_crisis_metrics(values, violations, top_k=3)) <= 3


class TestSelectRelevantMetrics:
    def test_frequency_ordering(self):
        selections = [
            np.array([1, 2, 3]),
            np.array([1, 2, 4]),
            np.array([1, 5, 6]),
        ]
        out = select_relevant_metrics(selections, n_relevant=2)
        assert out.tolist() == [1, 2]

    def test_pool_limits_history(self):
        old = [np.array([9])] * 10
        recent = [np.array([1])] * 3
        out = select_relevant_metrics(old + recent, n_relevant=1, pool=3)
        assert out.tolist() == [1]

    def test_returns_sorted_indices(self):
        selections = [np.array([7, 3, 5])] * 2
        out = select_relevant_metrics(selections, n_relevant=3)
        assert out.tolist() == sorted(out.tolist())

    def test_rank_tiebreak(self):
        # 8 and 9 both appear once; 8 is ranked first in its selection.
        selections = [np.array([8, 1]), np.array([1, 9])]
        out = select_relevant_metrics(selections, n_relevant=2,
                                      min_count=1)
        assert 1 in out  # appears twice
        assert 8 in out  # wins the tie against 9 on rank

    def test_min_count_drops_one_off_selections(self):
        selections = [np.array([1, 7]), np.array([1, 8]), np.array([1, 9])]
        out = select_relevant_metrics(selections, n_relevant=2)
        # 7/8/9 each appear once; with min_count=2 only metric 1 recurs,
        # and one recurring metric satisfies half of n_relevant=2.
        assert out.tolist() == [1]

    def test_min_count_relaxed_when_too_few_recur(self):
        selections = [np.array([1, 7]), np.array([2, 8])]
        out = select_relevant_metrics(selections, n_relevant=4)
        # Nothing recurs; the filter falls back to frequency order.
        assert len(out) == 4

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            select_relevant_metrics([], n_relevant=3)
        with pytest.raises(ValueError):
            select_relevant_metrics([np.array([])], n_relevant=3)
        with pytest.raises(ValueError):
            select_relevant_metrics([np.array([1])], n_relevant=0)
