"""Tests for the offline method's surrounding-period threshold window."""

import numpy as np
import pytest

from repro.methods import FingerprintMethod


class TestSurroundingWindowThresholds:
    def test_thresholds_use_crisis_period(self, small_trace):
        """Offline thresholds come from data surrounding the crises (the
        paper's 'four months of data'), not the whole trace."""
        crises = small_trace.labeled_crises
        method = FingerprintMethod()
        method.fit(small_trace, crises)

        detections = [c.detected_epoch for c in crises]
        margin = 15 * small_trace.epochs_per_day
        lo = max(min(detections) - margin, 0)
        hi = min(max(detections) + margin, small_trace.n_epochs)
        mask = small_trace.crisis_free_mask()
        mask[:lo] = False
        mask[hi:] = False
        from repro.core.thresholds import percentile_thresholds

        expected = percentile_thresholds(small_trace.quantiles[mask])
        np.testing.assert_allclose(method.thresholds.hot, expected.hot)
        np.testing.assert_allclose(method.thresholds.cold, expected.cold)

    def test_warmup_period_excluded(self, small_trace):
        """Growth means warmup epochs sit lower than the crisis period;
        including them would drag the cold thresholds down."""
        crises = small_trace.labeled_crises
        method = FingerprintMethod()
        method.fit(small_trace, crises)
        from repro.core.thresholds import percentile_thresholds

        whole = percentile_thresholds(
            small_trace.quantiles[small_trace.crisis_free_mask()]
        )
        # The two threshold sets must genuinely differ somewhere.
        assert not np.allclose(method.thresholds.cold, whole.cold)

    def test_vector_stable_across_fits(self, small_trace):
        crises = small_trace.labeled_crises
        a = FingerprintMethod()
        a.fit(small_trace, crises)
        b = FingerprintMethod()
        b.fit(small_trace, crises)
        np.testing.assert_array_equal(a.vector(crises[0]),
                                      b.vector(crises[0]))
