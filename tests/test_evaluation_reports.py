"""Tests for the one-shot evaluation report (small trace, no baselines)."""

import numpy as np
import pytest

from repro.evaluation.reports import full_report


@pytest.fixture(scope="module")
def report(small_trace):
    return full_report(
        small_trace,
        n_offline_runs=2,
        n_online_runs=3,
        seed=0,
        include_baselines=False,
    )


class TestFullReport:
    def test_contains_fingerprint_auc(self, report):
        assert "fingerprints" in report.aucs
        assert 0.5 < report.aucs["fingerprints"] <= 1.0

    def test_offline_operating_point(self, report):
        op = report.offline["fingerprints"]
        assert 0.0 <= op["known_accuracy"] <= 1.0
        assert "alpha" in op

    def test_offline_has_confidence_interval(self, report):
        op = report.offline["fingerprints"]
        assert op["known_accuracy_lo"] <= op["known_accuracy"] \
            <= op["known_accuracy_hi"]

    def test_online_settings_present(self, report):
        assert set(report.online) == {
            "quasi-online",
            "online, bootstrap 10",
            "online, bootstrap 2",
        }

    def test_forecasting_measured(self, report):
        assert 0.0 <= report.forecasting["recall"] <= 1.0
        assert 0.0 <= report.forecasting["false_alarm_rate"] <= 1.0

    def test_text_renders_sections(self, report):
        assert "Discrimination + offline identification" in report.text
        assert "Online identification" in report.text
        assert "Forecasting:" in report.text
        assert "Confusion structure" in report.text
