"""Tests for the future-work extensions: forecasting and evolution."""

import numpy as np
import pytest

from repro.extensions import (
    CrisisEvolutionModel,
    CrisisForecaster,
)
from repro.methods import FingerprintMethod


@pytest.fixture(scope="module")
def fitted(small_trace):
    method = FingerprintMethod()
    crises = small_trace.labeled_crises
    method.fit(small_trace, crises)
    return method, crises


class TestCrisisForecaster:
    def test_fit_and_score(self, small_trace, fitted):
        method, crises = fitted
        fc = CrisisForecaster(
            small_trace, method.thresholds, method.relevant,
            lead_epochs=1, window_epochs=3,
        ).fit(crises[:10])
        scores = fc.score_epochs(np.arange(100, 110))
        assert scores.shape == (10,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_unfitted_raises(self, small_trace, fitted):
        method, _ = fitted
        fc = CrisisForecaster(small_trace, method.thresholds,
                              method.relevant)
        with pytest.raises(RuntimeError):
            fc.score_epochs(np.arange(5))

    def test_evaluate_bounds(self, small_trace, fitted):
        method, crises = fitted
        fc = CrisisForecaster(
            small_trace, method.thresholds, method.relevant,
            lead_epochs=1, window_epochs=3,
        ).fit(crises[:10])
        result = fc.evaluate(crises[10:], threshold=0.5, n_normal=500)
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.false_alarm_rate <= 1.0
        assert result.n_crises == len(crises[10:])

    def test_normal_epochs_score_low(self, small_trace, fitted):
        """Far from crises, the forecaster should rarely alarm."""
        method, crises = fitted
        fc = CrisisForecaster(
            small_trace, method.thresholds, method.relevant,
            lead_epochs=1, window_epochs=3,
        ).fit(crises[:10])
        result = fc.evaluate(crises[10:], threshold=0.5, n_normal=1000)
        assert result.false_alarm_rate < 0.3

    def test_validation(self, small_trace, fitted):
        method, _ = fitted
        with pytest.raises(ValueError):
            CrisisForecaster(small_trace, method.thresholds,
                             method.relevant, lead_epochs=0)


class TestCrisisEvolutionModel:
    def test_profiles_built_per_label(self, small_trace, fitted):
        method, crises = fitted
        model = CrisisEvolutionModel(
            small_trace, method.thresholds, method.relevant
        ).fit(crises)
        assert "B" in model.profiles
        profile = model.profiles["B"]
        assert profile.n_crises >= 7
        assert profile.mean_duration_epochs > 0

    def test_magnitude_high_during_crisis(self, small_trace, fitted):
        method, crises = fitted
        model = CrisisEvolutionModel(
            small_trace, method.thresholds, method.relevant
        ).fit(crises)
        profile = model.profiles["B"]
        # Early epochs (in crisis) have larger magnitude than the tail
        # (after resolution).
        assert np.nanmean(profile.magnitudes[:4]) > \
            np.nanmean(profile.magnitudes[-4:])

    def test_progress_report(self, small_trace, fitted):
        method, crises = fitted
        model = CrisisEvolutionModel(
            small_trace, method.thresholds, method.relevant
        ).fit(crises[:12])
        live = next(c for c in crises[12:] if c.label in model.profiles)
        report = model.progress(live, live.label, elapsed_epochs=2)
        assert 0.0 <= report["fraction_elapsed"] <= 1.0
        assert report["expected_remaining_epochs"] >= 0.0

    def test_unknown_label_raises(self, small_trace, fitted):
        method, crises = fitted
        model = CrisisEvolutionModel(
            small_trace, method.thresholds, method.relevant
        ).fit(crises)
        with pytest.raises(KeyError):
            model.progress(crises[0], "nope", 1)

    def test_remaining_epochs_clamped(self, small_trace, fitted):
        method, crises = fitted
        model = CrisisEvolutionModel(
            small_trace, method.thresholds, method.relevant
        ).fit(crises)
        profile = model.profiles["B"]
        assert profile.remaining_epochs(10_000) == 0.0
        with pytest.raises(ValueError):
            profile.remaining_epochs(-1)
