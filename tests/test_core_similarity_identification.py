"""Tests for similarity, identification thresholds, and stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identification import (
    UNKNOWN,
    Identifier,
    estimate_threshold_online,
    first_correct_epoch,
    is_stable,
    sequence_label,
    threshold_from_pairs,
)
from repro.core.similarity import l2_distance, pair_arrays, pairwise_distances


class TestL2Distance:
    def test_basic(self):
        assert l2_distance(np.array([0, 0]), np.array([3, 4])) == 5.0

    def test_symmetry(self):
        a, b = np.array([1.0, 2.0]), np.array([-1.0, 0.5])
        assert l2_distance(a, b) == l2_distance(b, a)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            l2_distance(np.zeros(2), np.zeros(3))


class TestPairwiseDistances:
    def test_matrix_properties(self):
        rng = np.random.default_rng(0)
        vecs = [rng.normal(size=5) for _ in range(4)]
        D = pairwise_distances(vecs)
        assert D.shape == (4, 4)
        np.testing.assert_allclose(D, D.T)
        np.testing.assert_allclose(np.diag(D), 0.0)
        assert D[0, 1] == pytest.approx(l2_distance(vecs[0], vecs[1]))

    def test_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_blocked_matches_broadcast_formula(self):
        """The Gram-trick kernel agrees with the O(n^2 d) broadcast it
        replaced, including with block sizes that split the rows."""
        rng = np.random.default_rng(42)
        vecs = [rng.normal(size=17) * rng.uniform(0.01, 100) for _ in range(37)]
        stacked = np.stack(vecs)
        diff = stacked[:, None, :] - stacked[None, :, :]
        reference = np.sqrt((diff ** 2).sum(axis=2))
        for block_rows in (1, 5, 37, 4096):
            D = pairwise_distances(vecs, block_rows=block_rows)
            np.testing.assert_allclose(D, reference, atol=1e-9)
            np.testing.assert_allclose(D, D.T)
            assert np.all(np.diag(D) == 0.0)

    def test_no_nan_on_near_duplicates(self):
        """Negative squared distances from cancellation are clamped."""
        base = np.full(8, 1e8)
        vecs = [base, base + 1e-9, base.copy()]
        D = pairwise_distances(vecs)
        assert np.all(np.isfinite(D))
        assert np.all(D >= 0.0)


class TestPairArrays:
    def test_upper_triangle_extraction(self):
        D = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0.0]])
        d, same = pair_arrays(D, ["A", "A", "B"])
        np.testing.assert_array_equal(d, [1, 2, 3])
        np.testing.assert_array_equal(same, [True, False, False])

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_arrays(np.zeros((2, 3)), ["A", "B"])
        with pytest.raises(ValueError):
            pair_arrays(np.zeros((2, 2)), ["A"])


class TestThresholdRules:
    """Section 5.3's online threshold-estimation rules."""

    def test_only_same_pairs(self):
        t = threshold_from_pairs(np.array([1.0, 2.0]),
                                 np.array([True, True]), alpha=0.1)
        assert t == pytest.approx(2.0 * 1.1)

    def test_only_diff_pairs(self):
        t = threshold_from_pairs(np.array([3.0, 5.0]),
                                 np.array([False, False]), alpha=0.1)
        assert t == pytest.approx(3.0 * 0.9)

    def test_separable_interpolates(self):
        d = np.array([1.0, 2.0, 4.0, 6.0])
        same = np.array([True, True, False, False])
        t = threshold_from_pairs(d, same, alpha=0.5)
        assert t == pytest.approx(2.0 + 0.5 * (4.0 - 2.0))

    def test_non_separable_uses_roc(self):
        d = np.array([1.0, 3.0, 2.0, 6.0])
        same = np.array([True, True, False, False])
        t = threshold_from_pairs(d, same, alpha=0.0)
        # ROC threshold with zero false alarms admits distances < 2.
        assert 1.0 <= t < 2.0

    def test_wrapper_from_vectors(self):
        vecs = [np.array([0.0]), np.array([0.5]), np.array([5.0])]
        labels = ["B", "B", "C"]
        t = estimate_threshold_online(vecs, labels, alpha=0.2)
        assert 0.5 < t < 4.5

    def test_wrapper_validation(self):
        with pytest.raises(ValueError):
            estimate_threshold_online([np.zeros(2)], ["A"], 0.1)


class TestIdentifier:
    def test_empty_library_unknown(self):
        res = Identifier(1.0).identify(np.zeros(3), [])
        assert res.label == UNKNOWN
        assert not res.matched

    def test_nearest_below_threshold_matches(self):
        lib = [(np.array([0.0, 0.0]), "B"), (np.array([5.0, 5.0]), "C")]
        res = Identifier(1.0).identify(np.array([0.1, 0.1]), lib)
        assert res.label == "B"
        assert res.nearest_label == "B"

    def test_nearest_above_threshold_unknown(self):
        lib = [(np.array([5.0, 5.0]), "C")]
        res = Identifier(1.0).identify(np.array([0.0, 0.0]), lib)
        assert res.label == UNKNOWN
        assert res.nearest_label == "C"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            Identifier(-1.0)


class TestStability:
    @pytest.mark.parametrize(
        "seq", [["x", "x", "A", "A", "A"], ["B"] * 5, ["x"] * 5, [], ["A"]]
    )
    def test_stable(self, seq):
        assert is_stable(seq)

    @pytest.mark.parametrize(
        "seq",
        [
            ["x", "x", "A", "x", "A"],
            ["x", "x", "A", "A", "B"],
            ["A", "A", "A", "A", "B"],
            ["A", "x"],
        ],
    )
    def test_unstable(self, seq):
        assert not is_stable(seq)

    def test_sequence_label(self):
        assert sequence_label(["x", "A", "A"]) == "A"
        assert sequence_label(["x", "x"]) is None
        with pytest.raises(ValueError):
            sequence_label(["A", "x"])

    def test_first_correct_epoch(self):
        assert first_correct_epoch(["x", "B", "B"], "B") == 1
        assert first_correct_epoch(["x", "x"], "B") is None

    @given(st.lists(st.sampled_from(["x", "A", "B"]), max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_stability_matches_regex_definition(self, seq):
        """x* L* is exactly the stable language."""
        import re

        stable_re = re.compile(r"^x*(A*|B*)$")
        assert is_stable(seq) == bool(stable_re.match("".join(seq)))
