"""Tests for L1-regularized logistic regression and feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.logistic import (
    L1LogisticRegression,
    lambda_max,
    select_top_k_features,
)


def make_sparse_problem(seed=0, n=500, d=40, support=(3, 11, 27),
                        coefs=(2.0, -1.5, 1.2), intercept=0.2):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = np.zeros(d)
    for i, c in zip(support, coefs):
        w[i] = c
    p = 1.0 / (1.0 + np.exp(-(X @ w + intercept)))
    y = (rng.uniform(size=n) < p).astype(float)
    return X, y, set(support)


class TestFit:
    def test_recovers_support(self):
        X, y, support = make_sparse_problem()
        model = L1LogisticRegression(lam=0.02).fit(X, y)
        assert support <= set(model.nonzero_indices.tolist())
        assert model.n_nonzero < 20  # most irrelevant features zeroed

    def test_stronger_penalty_sparser(self):
        X, y, _ = make_sparse_problem()
        weak = L1LogisticRegression(lam=0.005).fit(X, y)
        strong = L1LogisticRegression(lam=0.08).fit(X, y)
        assert strong.n_nonzero <= weak.n_nonzero

    def test_train_accuracy_reasonable(self):
        X, y, _ = make_sparse_problem()
        model = L1LogisticRegression(lam=0.01).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.75

    def test_lambda_above_max_gives_zero(self):
        X, y, _ = make_sparse_problem()
        lam = lambda_max(X, y) * 1.05
        model = L1LogisticRegression(lam=lam).fit(X, y)
        assert model.n_nonzero == 0

    def test_predict_proba_in_unit_interval(self):
        X, y, _ = make_sparse_problem()
        p = L1LogisticRegression(lam=0.02).fit(X, y).predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_separable_data_converges(self):
        X = np.array([[-2.0], [-1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = L1LogisticRegression(lam=0.01, max_iter=2000).fit(X, y)
        assert np.array_equal(model.predict(X), y.astype(int))

    def test_input_validation(self):
        solver = L1LogisticRegression()
        with pytest.raises(ValueError):
            solver.fit(np.zeros((3, 2)), np.array([0, 1]))  # length mismatch
        with pytest.raises(ValueError):
            solver.fit(np.zeros((3, 2)), np.array([0, 1, 2]))  # non-binary
        with pytest.raises(ValueError):
            solver.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            L1LogisticRegression(lam=-1.0)

    def test_warm_start_path_monotone_support(self):
        X, y, _ = make_sparse_problem()
        lmax = lambda_max(X, y)
        lambdas = np.geomspace(lmax * 0.9, lmax * 0.01, 8)
        models = L1LogisticRegression().path(X, y, lambdas)
        sizes = [m.n_nonzero for m in models]
        # Support grows (weakly) as the penalty relaxes.
        assert all(a <= b + 2 for a, b in zip(sizes, sizes[1:]))


class TestLambdaMax:
    def test_zero_for_constant_features(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5, dtype=float)
        assert lambda_max(X, y) == pytest.approx(0.0)

    def test_positive_for_informative_feature(self):
        X, y, _ = make_sparse_problem()
        assert lambda_max(X, y) > 0


class TestSelectTopK:
    def test_finds_true_support(self):
        X, y, support = make_sparse_problem(n=800)
        picked = select_top_k_features(X, y, k=3)
        assert set(picked.tolist()) == support

    def test_respects_k(self):
        X, y, _ = make_sparse_problem()
        assert len(select_top_k_features(X, y, k=5)) <= 5

    def test_single_class_returns_empty(self):
        X = np.random.default_rng(0).normal(size=(20, 5))
        assert select_top_k_features(X, np.zeros(20), k=3).size == 0

    def test_ranked_by_strength(self):
        X, y, _ = make_sparse_problem(n=2000)
        picked = select_top_k_features(X, y, k=3)
        # Strongest coefficient (index 3, coef 2.0) should rank first.
        assert picked[0] == 3

    def test_rejects_nonpositive_k(self):
        X, y, _ = make_sparse_problem()
        with pytest.raises(ValueError):
            select_top_k_features(X, y, k=0)

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_never_exceeds_k(self, k):
        X, y, _ = make_sparse_problem(seed=k)
        assert len(select_top_k_features(X, y, k=k)) <= k
