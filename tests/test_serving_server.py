"""Front-door behavior over real sockets: admission, defense, isolation."""

import socket
import threading
import time

import pytest

from repro.config import ServingConfig
from repro.serving.loadgen import ServingClient, run_load, synthetic_report
from repro.serving.server import IngestServer
from repro.telemetry.chaos import (
    InjectedTenantCrash,
    ServingChaosConfig,
    ServingChaosInjector,
)


def small_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144, window_days=2,
        threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=4, max_inflight=256,
        idle_timeout_s=0.4, restart_base_delay=0.01,
        restart_max_delay=0.05, seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


@pytest.fixture
def server(tmp_path):
    servers = []

    def make(**over):
        srv = IngestServer(small_cfg(**over), tmp_path)
        srv.start()
        servers.append(srv)
        return srv

    yield make
    for srv in servers:
        srv.close()


def report(epoch, tenant="t", machine="m0"):
    return {
        "op": "report", "tenant": tenant, "machine": machine,
        "epoch": epoch, "values": [1.0, 2.0, 3.0, 4.0],
        "violation": False,
    }


class TestBasicProtocol:
    def test_ping_report_close_state(self, server):
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            assert client.request({"op": "ping"})["op"] == "pong"
            resp = client.request(report(0))
            assert resp["ok"] and resp["seq"] == 1
            resp = client.request(
                {"op": "close_epoch", "tenant": "t", "epoch": 0}
            )
            assert resp["ok"]
            state = client.request(
                {"op": "state", "tenant": "t"}
            )["state"]
            assert state["next_epoch"] == 1

    def test_state_unknown_tenant_is_error_not_mkdir(
        self, server, tmp_path
    ):
        """The read-only state op must not mint tenant directories for
        arbitrary queried names (adopt_existing would then resurrect
        them at every startup)."""
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            resp = client.request({"op": "state", "tenant": "ghost"})
            assert not resp["ok"]
            assert resp["error"] == "unknown-tenant"
            assert not (tmp_path / "tenants" / "ghost").exists()
            # Journaled verbs still create tenants normally.
            assert client.request(report(0, tenant="real"))["ok"]
            assert client.request({"op": "state", "tenant": "real"})["ok"]
            assert (tmp_path / "tenants" / "real").exists()

    def test_duplicate_report_is_acked_not_reapplied(self, server):
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            client.request(report(0))
            client.request({"op": "close_epoch", "tenant": "t", "epoch": 0})
            resp = client.request(report(0))  # stale resend
            assert resp["ok"] and resp["status"] == "duplicate"
            stats = client.request({"op": "stats"})
            assert stats["tenants"]["t"]["next_epoch"] == 1

    def test_future_epoch_rejected(self, server):
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            resp = client.request(report(7))
            assert not resp["ok"] and resp["error"] == "bad-epoch"

    def test_malformed_frames_answered_not_fatal(self, server):
        srv = server()
        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=5)
        sock.sendall(b"this is not json\n")
        sock.sendall(b'{"op": 42}\n')
        buf = b""
        while buf.count(b"\n") < 2:
            buf += sock.recv(4096)
        lines = buf.decode().strip().split("\n")
        import json
        for line in lines:
            resp = json.loads(line)
            assert resp["ok"] is False and resp["error"] == "malformed"
        # The connection (and server) survive; valid traffic still works.
        with ServingClient("127.0.0.1", srv.port) as client:
            assert client.request({"op": "ping"})["op"] == "pong"
        sock.close()
        assert srv.malformed_frames == 2

    def test_chaos_corrupted_frames_all_rejected_cleanly(self, server):
        srv = server()
        chaos = ServingChaosInjector(
            ServingChaosConfig(malformed_frame=1.0, seed=3)
        )
        from repro.serving import wire
        frames = [
            chaos.corrupt_frame(wire.encode_frame(report(0)), i)
            for i in range(12)
        ]
        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=5)
        sock.sendall(b"".join(frames))
        deadline = time.time() + 5
        buf = b""
        # Empty-line corruptions are skipped, the rest get error acks.
        expected = sum(1 for f in frames if f.strip())
        while buf.count(b"\n") < expected and time.time() < deadline:
            buf += sock.recv(4096)
        import json
        for line in buf.decode().strip().split("\n"):
            assert json.loads(line)["ok"] is False
        sock.close()
        with ServingClient("127.0.0.1", srv.port) as client:
            assert client.request({"op": "ping"})["op"] == "pong"


class TestSlowLoris:
    def test_stalled_partial_frame_is_dropped(self, server):
        srv = server(idle_timeout_s=0.2)
        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=5)
        sock.sendall(b'{"op": "ping"')  # no newline, then stall
        # The server drops us; recv sees EOF.
        sock.settimeout(5.0)
        assert sock.recv(4096) == b""
        sock.close()
        assert srv.slowloris_drops == 1
        # Healthy clients are unaffected.
        with ServingClient("127.0.0.1", srv.port) as client:
            assert client.request({"op": "ping"})["op"] == "pong"

    def test_oversized_frame_is_rejected(self, server):
        srv = server(max_frame_bytes=256)
        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=5)
        sock.sendall(b'{"op": "' + b"x" * 1024)
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(4096)
            if not chunk:
                break
            buf += chunk
        import json
        if buf:
            assert json.loads(buf.split(b"\n")[0])["error"] == (
                "frame-too-long"
            )
        sock.close()


class TestOverloadProof:
    def test_shed_with_retry_after_and_bounded_queue(self, server):
        # An admission budget far below the offered concurrency.
        srv = server(max_inflight=2)
        n_threads, per_thread = 8, 25
        overloads = []
        acked = []

        def hammer(k):
            with ServingClient("127.0.0.1", srv.port) as client:
                for i in range(per_thread):
                    resp = client.request(report(0, machine=f"m{k}-{i}"))
                    acked.append(resp["ok"])
                overloads.append(client.overloads)

        threads = [
            threading.Thread(target=hammer, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # Every report was eventually acked (clients retried through
        # the explicit retry-after sheds)...
        assert all(acked) and len(acked) == n_threads * per_thread
        # ...the server shed explicitly rather than queueing...
        assert srv.overload_responses > 0
        assert sum(overloads) == srv.overload_responses
        # ...and the in-flight bound was never exceeded.
        assert srv.peak_inflight <= 2
        assert srv.inflight == 0  # fully drained

    def test_healthy_tenant_keeps_identifying_while_one_crash_loops(
        self, tmp_path
    ):
        # The overload-proof acceptance criterion's isolation half:
        # tenant "bad" crash-loops into quarantine while "tenant-0"
        # sails through a full crisis lifecycle.
        def poison(tenant):
            if tenant != "bad":
                return None

            def hook(record):
                if record["op"] == "report":
                    raise InjectedTenantCrash("poison")

            return hook

        srv = IngestServer(
            small_cfg(max_restarts=2), tmp_path,
            fault_hook_factory=poison,
        )
        srv.start()
        try:
            with ServingClient("127.0.0.1", srv.port) as bad_client:
                statuses = set()
                for _ in range(8):
                    resp = bad_client.request(report(0, tenant="bad"))
                    statuses.add(resp.get("error"))
                    if resp.get("error") == "quarantined":
                        break
                    time.sleep(0.05)
                assert "quarantined" in statuses
            result = run_load(
                "127.0.0.1", srv.port, seed=42, n_tenants=1,
                n_machines=20, n_epochs=14, n_metrics=4,
                crisis_epochs=(9, 10, 11),
            )
            assert result.rejected == 0
            kinds = {e["type"] for e in result.events}
            assert "crisis_detected" in kinds
            assert "identification" in kinds
            assert "crisis_ended" in kinds
            with ServingClient("127.0.0.1", srv.port) as client:
                stats = client.request({"op": "stats"})
            assert stats["tenants"]["bad"]["state"] == "quarantined"
            assert stats["tenants"]["tenant-0"]["state"] == "running"
        finally:
            srv.close()


class TestAdminOps:
    def test_unquarantine_over_the_wire(self, tmp_path):
        """Operator releases a quarantined tenant without a restart."""
        poisoned = {"on": True}

        def poison(tenant):
            if tenant != "bad":
                return None

            def hook(record):
                if poisoned["on"] and record["op"] == "report":
                    raise InjectedTenantCrash("poison")

            return hook

        srv = IngestServer(
            small_cfg(max_restarts=2), tmp_path,
            fault_hook_factory=poison,
        )
        srv.start()
        try:
            with ServingClient("127.0.0.1", srv.port) as client:
                for _ in range(12):
                    resp = client.request(report(0, tenant="bad"))
                    if resp.get("error") == "quarantined":
                        break
                    time.sleep(0.05)
                assert resp.get("error") == "quarantined"
                # Releasing a tenant that is not quarantined is a typed
                # error, not a silent no-op.
                resp = client.request(
                    {"op": "unquarantine", "tenant": "never-seen"}
                )
                assert resp["error"] == "not-quarantined"
                # Fix the poison, then release: tenant serves again.
                poisoned["on"] = False
                resp = client.request(
                    {"op": "unquarantine", "tenant": "bad"}
                )
                assert resp["ok"]
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    resp = client.request(
                        report(0, tenant="bad", machine="m9")
                    )
                    if resp.get("ok"):
                        break
                    time.sleep(0.05)
                assert resp.get("ok"), resp
                stats = client.request({"op": "stats"})
                assert stats["tenants"]["bad"]["state"] == "running"
        finally:
            srv.close()


class TestGracefulShutdown:
    def test_close_checkpoints_tenants(self, server, tmp_path):
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            client.request(report(0))
            client.request({"op": "close_epoch", "tenant": "t", "epoch": 0})
        srv.close()
        assert (tmp_path / "tenants" / "t" / "checkpoint.npz").exists()


class TestIncidentsOp:
    def test_unknown_tenant_is_error_not_mkdir(self, server, tmp_path):
        """Like ``state``, the read-only incidents op must never mint a
        tenant directory for an arbitrary queried name."""
        srv = server()
        with ServingClient("127.0.0.1", srv.port) as client:
            resp = client.request({"op": "incidents", "tenant": "ghost"})
            assert not resp["ok"]
            assert resp["error"] == "unknown-tenant"
            assert not (tmp_path / "tenants" / "ghost").exists()

    def test_live_tenant_reports_catalog(self, server):
        srv = server(discovery_enabled=True)
        with ServingClient("127.0.0.1", srv.port) as client:
            client.request(report(0))
            client.request({"op": "close_epoch", "tenant": "t", "epoch": 0})
            resp = client.request({"op": "incidents", "tenant": "t"})
            assert resp["ok"]
            assert resp["tenant"] == "t"
            assert resp["crises"] == []  # one quiet epoch: no crises yet
            assert resp["library_labels"] == []
            disc = resp["discovery"]
            assert disc["attached"] is True
            assert disc["n_clusters"] == 0

    def test_discovery_disabled_reports_none(self, server):
        srv = server()  # discovery_enabled defaults to False
        with ServingClient("127.0.0.1", srv.port) as client:
            client.request(report(0))
            resp = client.request({"op": "incidents", "tenant": "t"})
            assert resp["ok"] and resp["discovery"] is None

    def test_discovery_survives_recovery(self, tmp_path):
        """A restart restores the tenant with its discovery engine
        attached (embedded in the checkpoint, or re-attached fresh)."""
        cfg = small_cfg(discovery_enabled=True)
        srv = IngestServer(cfg, tmp_path)
        srv.start()
        try:
            with ServingClient("127.0.0.1", srv.port) as client:
                client.request(report(0))
                client.request(
                    {"op": "close_epoch", "tenant": "t", "epoch": 0}
                )
        finally:
            srv.close()  # graceful: checkpoints the tenant

        srv = IngestServer(cfg, tmp_path)
        srv.start()
        try:
            with ServingClient("127.0.0.1", srv.port) as client:
                resp = client.request({"op": "incidents", "tenant": "t"})
                assert resp["ok"]
                assert resp["discovery"]["attached"] is True
        finally:
            srv.close()
