"""Tests for summary vectors (hot/cold/normal discretization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.summary import flatten_summary, summary_vectors
from repro.core.thresholds import QuantileThresholds


def thresholds(n_metrics=3, n_q=2, cold=10.0, hot=20.0):
    return QuantileThresholds(
        cold=np.full((n_metrics, n_q), cold),
        hot=np.full((n_metrics, n_q), hot),
    )


class TestSummaryVectors:
    def test_discretization(self):
        t = thresholds(1, 3)
        q = np.array([[5.0, 15.0, 25.0]])
        np.testing.assert_array_equal(summary_vectors(q, t), [[-1, 0, 1]])

    def test_boundary_values_are_normal(self):
        """Values exactly at a threshold are normal (strict comparison)."""
        t = thresholds(1, 2)
        q = np.array([[10.0, 20.0]])
        np.testing.assert_array_equal(summary_vectors(q, t), [[0, 0]])

    def test_window_shape(self):
        t = thresholds()
        window = np.full((5, 3, 2), 15.0)
        out = summary_vectors(window, t)
        assert out.shape == (5, 3, 2)
        assert out.dtype == np.int8

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            summary_vectors(np.zeros((2, 4, 2)), thresholds(3, 2))

    @given(
        hnp.arrays(np.float64, (4, 3, 2),
                   elements=st.floats(-100, 100, allow_nan=False))
    )
    @settings(max_examples=100, deadline=None)
    def test_values_always_ternary(self, q):
        out = summary_vectors(q, thresholds())
        assert set(np.unique(out)) <= {-1, 0, 1}

    @given(
        hnp.arrays(np.float64, (3, 2),
                   elements=st.floats(-100, 100, allow_nan=False)),
        st.floats(0.1, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance_direction(self, q, delta):
        """Raising values never turns a summary colder."""
        t = thresholds()
        before = summary_vectors(q, t)
        after = summary_vectors(q + delta, t)
        assert np.all(after >= before)


class TestFlattenSummary:
    def test_flatten_epoch(self):
        s = np.zeros((4, 3), dtype=np.int8)
        assert flatten_summary(s).shape == (12,)

    def test_flatten_window(self):
        s = np.zeros((5, 4, 3), dtype=np.int8)
        assert flatten_summary(s).shape == (5, 12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            flatten_summary(np.zeros(3))
