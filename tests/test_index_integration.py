"""The index wired through the stack: monitor parity, checkpoints, CLI.

The exact (brute) backend must be a drop-in for the historical Python
scans: the streaming monitor must emit *bit-identical* identification
events, and the incident database must return identical neighbors.
"""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    IndexConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.checkpoint import load_monitor, save_monitor
from repro.core.identification import Identifier, estimate_threshold_online
from repro.core.streaming import (
    CrisisEnded,
    IdentificationUpdate,
    StreamingCrisisMonitor,
    _LiveCrisis,
)
from repro.core.streaming import UNKNOWN
from repro.incidents import IncidentDatabase
from repro.methods import FingerprintMethod

STREAM_CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)


class _ScanMonitor(StreamingCrisisMonitor):
    """The monitor with the pre-index linear-scan `_identify` (reference)."""

    def _identify(self, live: _LiveCrisis, epoch: int) -> IdentificationUpdate:
        k = live.identifications
        pre = self.config.fingerprint.pre_epochs
        window = np.stack(live.summaries)
        new_vec = self._fingerprint(window)
        library = []
        for stored in self._library:
            if stored.label is None:
                continue
            library.append(
                (self._fingerprint(stored.quantile_window,
                                   n_epochs=pre + k + 1), stored.label)
            )
        threshold = None
        if len(library) >= 2:
            try:
                threshold = estimate_threshold_online(
                    [v for v, _ in library],
                    [lab for _, lab in library],
                    self.config.identification.alpha,
                )
            except ValueError:
                threshold = None
        if threshold is None or not library:
            result_label, distance = UNKNOWN, None
        else:
            result = Identifier(threshold).identify(new_vec, library)
            result_label, distance = result.label, result.distance
        live.identifications += 1
        return IdentificationUpdate(
            epoch=epoch,
            crisis_number=live.number,
            identification_epoch=k,
            label=result_label,
            distance=distance,
        )


def _replay(monitor, trace, start=0, stop=None, diagnose=True):
    frac = trace.kpi_violation_fraction.max(axis=1)
    stop = trace.n_epochs if stop is None else stop
    events = []
    for epoch in range(start, stop):
        for event in monitor.ingest(trace.quantiles[epoch],
                                    float(frac[epoch])):
            events.append(event)
            if diagnose and isinstance(event, CrisisEnded):
                label = _true_label(trace, event.epoch)
                if label is not None:
                    monitor.diagnose(event.crisis_number, label)
    return events


def _true_label(trace, end_epoch):
    for c in trace.crises:
        if c.instance.start_epoch - 4 <= end_epoch <= \
                c.instance.end_epoch + 8:
            return c.label
    return None


@pytest.fixture(scope="module")
def relevant(small_trace):
    method = FingerprintMethod(STREAM_CONFIG)
    method.fit(small_trace, small_trace.labeled_crises)
    return method.relevant


def _make(small_trace, relevant, cls=StreamingCrisisMonitor, config=None):
    return cls(
        n_metrics=small_trace.n_metrics,
        relevant_metrics=relevant,
        config=config or STREAM_CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 7,
    )


class TestMonitorParity:
    def test_index_path_bit_identical_to_scan(self, small_trace, relevant):
        """Every emitted event — labels *and* distances — matches exactly."""
        indexed = _replay(_make(small_trace, relevant), small_trace)
        scanned = _replay(
            _make(small_trace, relevant, cls=_ScanMonitor), small_trace
        )
        assert indexed == scanned
        idents = [e for e in indexed
                  if isinstance(e, IdentificationUpdate)]
        matched = [e for e in idents if e.label != UNKNOWN]
        assert len(idents) > 0
        assert len(matched) > 0  # parity on a trivially-unknown stream is vacuous

    def test_lsh_backend_smoke(self, small_trace, relevant):
        """The approximate backend drives the same protocol end to end."""
        config = STREAM_CONFIG.with_(index=IndexConfig(backend="lsh"))
        events = _replay(
            _make(small_trace, relevant, config=config), small_trace
        )
        assert any(isinstance(e, IdentificationUpdate) for e in events)


class TestCheckpointWithIndexes:
    def test_roundtrip_preserves_index_cache(
        self, small_trace, relevant, tmp_path
    ):
        monitor = _make(small_trace, relevant)
        half = small_trace.n_epochs // 2
        head = _replay(monitor, small_trace, stop=half)
        # Threshold refreshes invalidate the cache, so it may be empty at
        # an arbitrary epoch; build the slot-0 index so the checkpoint
        # has one to carry.
        if not monitor._index_cache:
            monitor._library_index(0)
        assert monitor._index_cache, "no index to checkpoint"
        assert any(len(ix) > 0 for ix in monitor._index_cache.values())
        path = tmp_path / "monitor.npz"
        save_monitor(monitor, path)

        restored = load_monitor(path, STREAM_CONFIG)
        assert sorted(restored._index_cache) == sorted(monitor._index_cache)
        for k, index in monitor._index_cache.items():
            back = restored._index_cache[k]
            assert back.ids() == index.ids()
            assert [back.payload(i) for i in back.ids()] == \
                [index.payload(i) for i in index.ids()]
        assert restored._index_labels == monitor._index_labels

        # The restored monitor must continue bit-identically. Diagnoses are
        # replayed on both sides (operator input is not checkpointed state).
        tail_original = _replay(monitor, small_trace, start=half)
        tail_restored = _replay(restored, small_trace, start=half)
        assert tail_restored == tail_original
        assert head  # the first half actually exercised the stream


class TestIncidentDatabaseIndex:
    def test_nearest_matches_linear_scan(self, rng):
        db = IncidentDatabase()
        points = rng.normal(size=(50, 6))
        for i, p in enumerate(points):
            db.add(f"T{i % 4}", i, p)
        query = rng.normal(size=6)
        scan = sorted(
            (float(np.linalg.norm(query - p)), i)
            for i, p in enumerate(points)
        )[:5]
        hits = db.nearest(query, k=5)
        assert [(d, r.incident_id) for r, d in hits] == scan

    def test_tie_break_lowest_incident_id(self):
        """Regression: equal distances resolve to the lowest incident id."""
        db = IncidentDatabase()
        vec = np.array([1.0, 2.0])
        for i in range(4):
            db.add("B", i * 10, vec)
        hits = db.nearest(vec, k=3)
        assert [r.incident_id for r, _ in hits] == [0, 1, 2]
        assert all(d == 0.0 for _, d in hits)

    def test_index_tracks_mutations(self, rng):
        db = IncidentDatabase()
        db.add("A", 0, np.array([0.0, 0.0]))
        assert db.nearest(np.zeros(2), k=1)[0][0].label == "A"
        db.add("B", 1, np.array([0.1, 0.0]))  # after an index was built
        hits = db.nearest(np.array([0.1, 0.0]), k=1)
        assert hits[0][0].label == "B"
        db.update_fingerprints(
            [np.array([5.0, 5.0]), np.array([0.0, 0.0])]
        )
        assert db.nearest(np.zeros(2), k=1)[0][0].label == "B"
