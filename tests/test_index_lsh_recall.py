"""Measured recall contract of the LSH backend (satellite of the index PR).

The default LSH configuration must keep recall@10 >= 0.9 against the
exact backend on data shaped like real crisis fingerprints: a catalog of
simulator crisis fingerprints, blurred into a fleet-scale library by
seeded perturbation.  Everything is seeded, so a recall regression from
retuning ``n_tables`` / ``n_hashes`` / the automatic width fails this
test deterministically rather than degrading silently in production.
"""

import numpy as np
import pytest

from repro.config import FingerprintingConfig, ThresholdConfig
from repro.index import BruteForceIndex, LSHIndex
from repro.methods import FingerprintMethod

N_POINTS = 5000
N_QUERIES = 100
K = 10
MIN_RECALL = 0.9


@pytest.fixture(scope="module")
def fingerprint_cloud(small_trace):
    """5k synthetic fingerprints seeded from the trace's crisis catalog."""
    config = FingerprintingConfig(thresholds=ThresholdConfig(window_days=30))
    method = FingerprintMethod(config)
    method.fit(small_trace, small_trace.labeled_crises)
    base = np.stack(
        [method.vector(c) for c in small_trace.labeled_crises]
    )
    rng = np.random.default_rng(2024)
    picks = rng.integers(0, len(base), size=N_POINTS)
    points = base[picks] + rng.normal(scale=0.05, size=(N_POINTS, base.shape[1]))
    queries = base[rng.integers(0, len(base), size=N_QUERIES)] + rng.normal(
        scale=0.05, size=(N_QUERIES, base.shape[1])
    )
    return points, queries


def test_default_lsh_recall_at_10(fingerprint_cloud):
    points, queries = fingerprint_cloud
    dim = points.shape[1]
    exact = BruteForceIndex(dim, dtype=np.float64)
    exact.add_batch(points)
    approx = LSHIndex(dim, seed=0)  # all-default configuration
    approx.add_batch(points)

    recalls = []
    for query in queries:
        truth = {h.id for h in exact.query(query, k=K)}
        got = {h.id for h in approx.query(query, k=K)}
        recalls.append(len(got & truth) / K)
    mean_recall = float(np.mean(recalls))
    assert mean_recall >= MIN_RECALL, (
        f"recall@{K} = {mean_recall:.3f} < {MIN_RECALL} over "
        f"{N_QUERIES} queries on {N_POINTS} fingerprints"
    )


def test_lsh_touches_fraction_of_library(fingerprint_cloud):
    """Sub-linearity in practice: candidate sets are a small fraction."""
    points, queries = fingerprint_cloud
    approx = LSHIndex(points.shape[1], seed=0)
    approx.add_batch(points)
    approx._ensure_hashed()
    fractions = [
        len(approx._candidates(q.astype(np.float64))) / len(points)
        for q in queries[:20]
    ]
    assert float(np.mean(fractions)) < 0.5
