"""Cross-module property-based invariants (hypothesis).

These check the mathematical promises the method relies on, over random
inputs rather than hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.identification import threshold_from_pairs
from repro.core.similarity import l2_distance, pairwise_distances
from repro.core.summary import summary_vectors
from repro.core.thresholds import QuantileThresholds, percentile_thresholds
from repro.telemetry.quantiles import summarize_epoch

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestQuantileInvariants:
    @given(hnp.arrays(np.float64, (17, 4), elements=finite))
    @settings(max_examples=80, deadline=None)
    def test_machine_permutation_invariance(self, samples):
        """Datacenter-wide quantiles cannot depend on machine ordering."""
        qs = (0.25, 0.5, 0.95)
        base = summarize_epoch(samples, qs)
        perm = summarize_epoch(samples[::-1], qs)
        np.testing.assert_array_equal(base, perm)

    @given(hnp.arrays(np.float64, (11, 3), elements=finite), finite)
    @settings(max_examples=80, deadline=None)
    def test_translation_equivariance(self, samples, shift):
        qs = (0.25, 0.5, 0.95)
        base = summarize_epoch(samples, qs)
        shifted = summarize_epoch(samples + shift, qs)
        np.testing.assert_allclose(shifted, base + shift, rtol=1e-9,
                                   atol=1e-6)


class TestThresholdInvariants:
    @given(
        hnp.arrays(np.float64, (50, 3, 2), elements=st.floats(0, 1e4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_band_contains_median(self, history):
        t = percentile_thresholds(history, 2.0, 98.0)
        med = np.percentile(history, 50, axis=0)
        assert np.all(med >= t.cold - 1e-9)
        assert np.all(med <= t.hot + 1e-9)

    @given(
        hnp.arrays(np.float64, (40, 2, 3), elements=st.floats(0, 1e4)),
        st.floats(1.0, 20.0),
        st.floats(80.0, 99.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_summary_flag_rate_bounded(self, history, cold, hot):
        t = percentile_thresholds(history, cold, hot)
        flags = summary_vectors(history, t)
        rate = np.mean(flags != 0)
        expected = (cold + (100.0 - hot)) / 100.0
        assert rate <= expected + 0.15  # discrete-data slack


class TestDistanceInvariants:
    vectors = hnp.arrays(np.float64, (6, 9),
                         elements=st.floats(-1, 1, allow_nan=False))

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, vecs):
        D = pairwise_distances(list(vecs))
        n = len(vecs)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert D[i, j] <= D[i, k] + D[k, j] + 1e-9

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_pointwise(self, vecs):
        D = pairwise_distances(list(vecs))
        assert D[1, 4] == pytest.approx(l2_distance(vecs[1], vecs[4]))


class TestThresholdRuleInvariants:
    @given(
        hnp.arrays(np.float64, (10,), elements=st.floats(0.01, 100.0)),
        hnp.arrays(np.bool_, (10,)),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_threshold_nonnegative_and_finite(self, dists, same, alpha):
        t = threshold_from_pairs(dists, same, alpha)
        assert np.isfinite(t)
        assert t >= 0.0

    @given(hnp.arrays(np.float64, (8,), elements=st.floats(0.01, 100.0)))
    @settings(max_examples=60, deadline=None)
    def test_same_only_scales_with_alpha(self, dists):
        same = np.ones(8, dtype=bool)
        t0 = threshold_from_pairs(dists, same, 0.0)
        t1 = threshold_from_pairs(dists, same, 0.5)
        assert t1 >= t0
        assert t0 == pytest.approx(dists.max())
