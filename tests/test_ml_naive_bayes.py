"""Tests for Gaussian naive Bayes."""

import numpy as np
import pytest

from repro.ml.naive_bayes import GaussianNaiveBayes


def gaussian_problem(seed=0, n=400, sep=3.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, (n // 2, 4))
    X1 = rng.normal(sep, 1.0, (n // 2, 4))
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2), np.ones(n // 2)]).astype(int)
    return X, y


class TestGaussianNaiveBayes:
    def test_separable_problem_high_accuracy(self):
        X, y = gaussian_problem()
        nb = GaussianNaiveBayes().fit(X, y)
        assert np.mean(nb.predict(X) == y) > 0.98

    def test_predict_proba_normalized(self):
        X, y = gaussian_problem()
        p = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_priors_reflect_imbalance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = np.array([1] * 10 + [0] * 90)
        nb = GaussianNaiveBayes().fit(X, y)
        assert nb.class_prior_[1] == pytest.approx(0.1)

    def test_brier_score_better_for_better_model(self):
        X, y = gaussian_problem(sep=3.0)
        Xw, yw = gaussian_problem(seed=1, sep=0.2)
        good = GaussianNaiveBayes().fit(X, y).brier_score(X, y)
        bad = GaussianNaiveBayes().fit(Xw, yw).brier_score(Xw, yw)
        assert good < bad

    def test_requires_both_classes(self):
        X = np.zeros((5, 2))
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(X, np.zeros(5, dtype=int))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.zeros((2, 2)))

    def test_constant_feature_no_nan(self):
        X, y = gaussian_problem()
        X = np.hstack([X, np.ones((len(y), 1))])  # constant column
        p = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        assert np.all(np.isfinite(p))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((4, 2)), np.zeros(3, dtype=int))
