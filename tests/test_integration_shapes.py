"""End-to-end shape checks on the small trace.

Small-scale versions of the paper's headline claims — the full-scale runs
live in benchmarks/ — plus cross-module consistency checks.
"""

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.evaluation.discrimination import discrimination_auc
from repro.evaluation.experiments import (
    OfflineIdentificationExperiment,
    OnlineIdentificationExperiment,
)
from repro.methods import (
    AllMetricsFingerprintMethod,
    FingerprintMethod,
    KPIMethod,
)


@pytest.fixture(scope="module")
def crises(small_trace):
    return small_trace.labeled_crises


@pytest.fixture(scope="module")
def fitted_fp(small_trace, crises):
    method = FingerprintMethod()
    method.fit(small_trace, crises)
    return method


class TestDiscriminationShape:
    def test_fingerprints_high_auc(self, fitted_fp, crises):
        assert discrimination_auc(fitted_fp, crises) > 0.85

    def test_fingerprints_beat_kpis(self, small_trace, fitted_fp, crises):
        kpi = KPIMethod()
        kpi.fit(small_trace, crises)
        assert discrimination_auc(fitted_fp, crises) >= \
            discrimination_auc(kpi, crises) - 0.05

    def test_selection_avoids_junk_metrics(self, small_trace, fitted_fp):
        names = [small_trace.metric_names[i] for i in fitted_fp.relevant]
        junk = [n for n in names if n.startswith("misc.")]
        assert len(junk) <= len(names) * 0.2


class TestOfflineIdentificationShape:
    def test_operating_point_accuracy(self, fitted_fp, crises):
        exp = OfflineIdentificationExperiment(
            fitted_fp, crises, n_runs=3, seed=1,
            alphas=np.linspace(0, 1, 21),
        )
        op = exp.run().operating_point()
        balanced = (op["known_accuracy"] + op["unknown_accuracy"]) / 2
        assert balanced > 0.6
        assert op["mean_time_minutes"] <= 45


class TestOnlineIdentificationShape:
    @pytest.fixture(scope="class")
    def online_config(self):
        return FingerprintingConfig(
            selection=SelectionConfig(n_relevant=20),
            thresholds=ThresholdConfig(window_days=30),
        )

    def test_online_beats_chance(self, small_trace, online_config):
        exp = OnlineIdentificationExperiment(small_trace, online_config)
        curves = exp.run(mode="online", bootstrap=5, n_runs=7,
                         alphas=np.linspace(0, 1, 11), seed=1)
        op = curves.operating_point()
        balanced = (op["known_accuracy"] + op["unknown_accuracy"]) / 2
        assert balanced > 0.5

    def test_quasi_at_least_matches_online(self, small_trace,
                                           online_config):
        exp = OnlineIdentificationExperiment(small_trace, online_config)
        alphas = np.linspace(0, 1, 11)
        quasi = exp.run(mode="quasi-online", bootstrap=5, n_runs=5,
                        alphas=alphas, seed=1).operating_point()
        online = exp.run(mode="online", bootstrap=5, n_runs=5,
                         alphas=alphas, seed=1).operating_point()

        def balanced(op):
            return (op["known_accuracy"] + op["unknown_accuracy"]) / 2

        # Quasi-online has strictly more information (full-knowledge
        # threshold), so it should not be much worse.
        assert balanced(quasi) >= balanced(online) - 0.15


class TestAllMetricsConsistency:
    def test_same_protocol_runs(self, small_trace, crises):
        method = AllMetricsFingerprintMethod()
        method.fit(small_trace, crises)
        auc = discrimination_auc(method, crises)
        assert 0.5 < auc <= 1.0
