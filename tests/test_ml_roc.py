"""Tests for distance-ROC curves, AUC, and threshold selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.roc import auc_score, roc_curve, threshold_at_alpha


class TestROCCurve:
    def test_perfect_separation(self):
        d = np.array([1.0, 1.2, 4.0, 5.0])
        same = np.array([True, True, False, False])
        roc = roc_curve(d, same)
        assert roc.auc == pytest.approx(1.0)

    def test_inverted_separation(self):
        d = np.array([4.0, 5.0, 1.0, 1.2])
        same = np.array([True, True, False, False])
        assert roc_curve(d, same).auc == pytest.approx(0.0)

    def test_random_distances_auc_near_half(self):
        rng = np.random.default_rng(0)
        d = rng.uniform(size=2000)
        same = rng.uniform(size=2000) < 0.5
        assert 0.45 < roc_curve(d, same).auc < 0.55

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        d = np.concatenate([rng.normal(1, 0.5, 50), rng.normal(2, 0.5, 80)])
        same = np.concatenate([np.ones(50, bool), np.zeros(80, bool)])
        roc = roc_curve(d, same)
        assert np.all(np.diff(roc.fpr) >= 0)
        assert np.all(np.diff(roc.tpr) >= 0)

    def test_ties_collapse_to_one_point(self):
        d = np.array([1.0, 1.0, 1.0, 2.0])
        same = np.array([True, False, True, False])
        roc = roc_curve(d, same)
        # Operating points: start, d<=1, d<=2.
        assert len(roc.fpr) == 3

    def test_needs_both_pair_kinds(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1.0, 2.0]), np.array([True, True]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1.0]), np.array([True, False]))


class TestThresholdAtAlpha:
    def test_zero_alpha_separating_case(self):
        d = np.array([1.0, 1.2, 4.0, 5.0])
        same = np.array([True, True, False, False])
        t = threshold_at_alpha(d, same, alpha=0.0)
        # All same-pairs below t, no distinct pairs below t.
        assert 1.2 <= t < 4.0

    def test_alpha_one_admits_everything(self):
        d = np.array([1.0, 3.0, 2.0, 5.0])
        same = np.array([True, False, True, False])
        t = threshold_at_alpha(d, same, alpha=1.0)
        assert t >= 5.0

    def test_monotone_in_alpha(self):
        rng = np.random.default_rng(2)
        d = np.concatenate([rng.normal(1, 0.4, 40), rng.normal(2.5, 0.6, 60)])
        same = np.concatenate([np.ones(40, bool), np.zeros(60, bool)])
        ts = [threshold_at_alpha(d, same, a) for a in (0.0, 0.1, 0.3, 0.8)]
        assert ts == sorted(ts)

    def test_invalid_alpha(self):
        roc = roc_curve(np.array([1.0, 2.0]), np.array([True, False]))
        with pytest.raises(ValueError):
            roc.threshold_at_alpha(1.5)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_fpr_at_selected_threshold_within_alpha(self, alpha):
        rng = np.random.default_rng(3)
        d = np.concatenate([rng.normal(1, 0.5, 30), rng.normal(2, 0.7, 70)])
        same = np.concatenate([np.ones(30, bool), np.zeros(70, bool)])
        t = threshold_at_alpha(d, same, alpha)
        fpr = np.mean(d[~same] <= t)
        assert fpr <= alpha + 1e-9


class TestAUCScore:
    def test_matches_curve_auc(self):
        rng = np.random.default_rng(4)
        d = rng.uniform(size=100)
        same = rng.uniform(size=100) < 0.4
        assert auc_score(d, same) == pytest.approx(roc_curve(d, same).auc)

    def test_auc_is_pair_ranking_probability(self):
        """AUC equals P(same-pair distance < distinct-pair distance) for
        continuous distances (Mann-Whitney equivalence)."""
        rng = np.random.default_rng(5)
        d_same = rng.normal(1.0, 0.5, 40)
        d_diff = rng.normal(2.0, 0.5, 60)
        d = np.concatenate([d_same, d_diff])
        same = np.concatenate([np.ones(40, bool), np.zeros(60, bool)])
        mw = np.mean(d_same[:, None] < d_diff[None, :])
        assert auc_score(d, same) == pytest.approx(mw, abs=1e-9)
