"""Tests for the machine latent model and the metric catalog."""

import numpy as np
import pytest

from repro.datacenter.crises import EffectFields, build_effect_fields
from repro.datacenter.machines import (
    MachineFleet,
    queue_length,
)
from repro.datacenter.metrics import build_catalog


def make_latents(n_epochs=8, n_machines=10, seed=0, fields=None,
                 n_periodic=0):
    rng = np.random.default_rng(seed)
    fleet = MachineFleet(n_machines, rng)
    workload = np.ones(n_epochs)
    if fields is None:
        fields = EffectFields(n_epochs, n_machines)
    drift = 100.0 * np.ones((n_epochs, 25))
    periodic = 50.0 * np.ones((n_epochs, n_periodic))
    return fleet.latents(workload, fields, drift, rng, periodic=periodic)


class TestQueueLength:
    def test_zero_at_zero(self):
        assert queue_length(np.array([0.0]))[0] == 0.0

    def test_monotone_increasing(self):
        rho = np.linspace(0.0, 2.0, 200)
        q = queue_length(rho)
        assert np.all(np.diff(q) > 0)

    def test_continuous_at_saturation(self):
        below = queue_length(np.array([0.9699]))[0]
        above = queue_length(np.array([0.9701]))[0]
        assert abs(above - below) < 1.0

    def test_mm1_form_below_saturation(self):
        assert queue_length(np.array([0.5]))[0] == pytest.approx(1.0)

    def test_keeps_growing_past_saturation(self):
        q1 = queue_length(np.array([1.2]))[0]
        q2 = queue_length(np.array([1.5]))[0]
        assert q2 > q1 > 30


class TestMachineFleet:
    def test_balance_normalized(self):
        fleet = MachineFleet(50, np.random.default_rng(0))
        assert fleet.balance.mean() == pytest.approx(1.0)
        assert fleet.speed.mean() == pytest.approx(1.0)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            MachineFleet(0, np.random.default_rng(0))

    def test_latents_shapes(self):
        lt = make_latents(n_epochs=6, n_machines=9)
        assert lt.shape == (6, 9)
        assert lt.lat_hv_ms.shape == (6, 9)

    def test_latencies_positive(self):
        lt = make_latents()
        assert np.all(lt.lat_fe_ms > 0)
        assert np.all(lt.lat_hv_ms > 0)
        assert np.all(lt.lat_po_ms > 0)

    def test_cpu_mem_bounded(self):
        lt = make_latents()
        assert np.all((lt.cpu > 0) & (lt.cpu <= 1))
        assert np.all((lt.mem > 0) & (lt.mem <= 1))

    def test_backpressure_raises_post_queue(self):
        fields = EffectFields(8, 10)
        fields.backpressure[:] = 0.85
        stressed = make_latents(fields=fields)
        normal = make_latents()
        assert stressed.q_po.mean() > 5 * normal.q_po.mean()

    def test_db_add_raises_heavy_latency(self):
        fields = EffectFields(8, 10)
        fields.db_add_ms[:] = 3000.0
        stressed = make_latents(fields=fields)
        normal = make_latents()
        assert stressed.lat_hv_ms.mean() > normal.lat_hv_ms.mean() + 2000

    def test_shape_mismatch_rejected(self):
        fleet = MachineFleet(10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            fleet.latents(
                np.ones(5),
                EffectFields(6, 10),
                np.ones((5, 1)),
                np.random.default_rng(0),
            )


class TestMetricCatalog:
    def test_default_size_about_one_hundred(self):
        catalog = build_catalog()
        assert 100 <= len(catalog) <= 135

    def test_names_unique(self):
        catalog = build_catalog()
        assert len(set(catalog.names)) == len(catalog)

    def test_three_kpis(self):
        catalog = build_catalog()
        assert catalog.kpi_names == [
            "frontend.latency_ms",
            "heavy.latency_ms",
            "post.latency_ms",
        ]

    def test_index_of(self):
        catalog = build_catalog()
        idx = catalog.index_of("cpu.user_pct")
        assert catalog.specs[idx].name == "cpu.user_pct"
        with pytest.raises(KeyError):
            catalog.index_of("nope")

    def test_evaluate_shape_and_finite(self):
        catalog = build_catalog(n_noise=5, n_drift=5, n_periodic=4)
        lt = make_latents(n_epochs=4, n_machines=6, n_periodic=4)
        values = catalog.evaluate(lt, np.random.default_rng(1))
        assert values.shape == (4, 6, len(catalog))
        assert np.all(np.isfinite(values))

    def test_drift_metrics_track_global_series(self):
        catalog = build_catalog(n_noise=0, n_drift=3, n_periodic=0)
        lt = make_latents(n_epochs=4, n_machines=6)
        lt.drift[:, 1] = 500.0
        values = catalog.evaluate(lt, np.random.default_rng(2))
        drift1 = values[:, :, catalog.index_of("misc.drift_01")]
        assert np.all(drift1 > 300)

    def test_drift_width_validated(self):
        catalog = build_catalog(n_noise=0, n_drift=30, n_periodic=0)
        lt = make_latents(n_epochs=2, n_machines=3)  # only 25 drift series
        with pytest.raises(ValueError):
            catalog.evaluate(lt, np.random.default_rng(3))

    def test_group_structure(self):
        catalog = build_catalog()
        groups = {s.group for s in catalog}
        assert {"cpu", "memory", "disk", "network", "frontend", "heavy",
                "post", "app", "noise", "drift", "periodic"} <= groups
