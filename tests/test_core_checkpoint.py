"""Tests for crash-safe checkpoint/restore of the live service.

The load-bearing property: killing the service mid-crisis and resuming
from the last checkpoint must replay to *bit-identical* events — same
detections, same identification labels and distances, same crisis ends —
as a run that was never interrupted.
"""

import os

import numpy as np
import pytest

from repro.config import (
    FingerprintingConfig,
    ReliabilityConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    load_monitor,
    load_pipeline,
    read_checkpoint_extra,
    save_monitor,
    save_pipeline,
)
from repro.core.pipeline import FingerprintPipeline
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    StreamingCrisisMonitor,
)

CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=20),
    thresholds=ThresholdConfig(window_days=30),
)
RELIABILITY = ReliabilityConfig(coverage_floor=0.5)


def make_monitor(small_trace):
    return StreamingCrisisMonitor(
        n_metrics=small_trace.n_metrics,
        relevant_metrics=list(range(12)),
        config=CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 7,
        reliability=RELIABILITY,
    )


def replay(monitor, trace, start, stop, diagnose=True):
    """Drive the monitor over trace epochs [start, stop); collect events."""
    frac = trace.kpi_violation_fraction.max(axis=1)
    events = []
    for epoch in range(start, stop):
        for event in monitor.ingest(trace.quantiles[epoch],
                                    float(frac[epoch])):
            events.append(event)
            if diagnose and isinstance(event, CrisisEnded):
                monitor.diagnose(event.crisis_number,
                                 f"T{event.crisis_number % 4}")
    return events


@pytest.fixture(scope="module")
def uninterrupted(small_trace):
    monitor = make_monitor(small_trace)
    events = replay(monitor, small_trace, 0, small_trace.n_epochs)
    return monitor, events


class TestMonitorKillRestore:
    def test_resume_mid_crisis_is_bit_identical(self, small_trace, tmp_path,
                                                uninterrupted):
        _, expected = uninterrupted
        detections = [e for e in expected if isinstance(e, CrisisDetected)]
        assert len(detections) >= 3, "fixture trace must contain crises"
        # Kill the service one epoch into the third crisis — mid-window,
        # mid-identification-protocol, with a partially-diagnosed library.
        split = detections[2].epoch + 1

        monitor = make_monitor(small_trace)
        before = replay(monitor, small_trace, 0, split)
        path = tmp_path / "monitor.npz"
        save_monitor(monitor, path)

        restored = load_monitor(path, CONFIG, RELIABILITY)
        after = replay(restored, small_trace, split, small_trace.n_epochs)
        assert before + after == expected

    def test_restored_state_matches(self, small_trace, tmp_path,
                                    uninterrupted):
        monitor, _ = uninterrupted
        path = tmp_path / "monitor.npz"
        save_monitor(monitor, path)
        restored = load_monitor(path, CONFIG, RELIABILITY)
        assert len(restored.store) == len(monitor.store)
        np.testing.assert_array_equal(restored.store.values(),
                                      monitor.store.values())
        np.testing.assert_array_equal(restored.store.anomalous_mask(),
                                      monitor.store.anomalous_mask())
        np.testing.assert_array_equal(restored.thresholds.cold,
                                      monitor.thresholds.cold)
        np.testing.assert_array_equal(restored.thresholds.hot,
                                      monitor.thresholds.hot)
        assert restored.library_labels == monitor.library_labels
        assert restored.untrusted_epochs == monitor.untrusted_epochs
        assert restored._crisis_counter == monitor._crisis_counter

    def test_atomic_write_leaves_no_temp_files(self, small_trace, tmp_path):
        monitor = make_monitor(small_trace)
        replay(monitor, small_trace, 0, 200)
        path = tmp_path / "monitor.npz"
        save_monitor(monitor, path)
        save_monitor(monitor, path)  # overwrite in place
        assert sorted(p.name for p in tmp_path.iterdir()) == ["monitor.npz"]
        load_monitor(path, CONFIG, RELIABILITY)

    def test_wrong_kind_rejected(self, small_trace, tmp_path):
        pipe = FingerprintPipeline(small_trace, CONFIG)
        path = tmp_path / "pipeline.npz"
        save_pipeline(pipe, path)
        with pytest.raises(ValueError):
            load_monitor(path, CONFIG, RELIABILITY)


class TestPipelineCheckpoint:
    def test_restored_pipeline_identifies_identically(self, small_trace,
                                                      tmp_path):
        pipe = FingerprintPipeline(small_trace, CONFIG)
        crises = small_trace.detected_crises
        for crisis in crises[:4]:
            pipe.observe(crisis)
            pipe.refresh(crisis.detected_epoch)
            pipe.confirm(crisis)
        pipe.update_identification_threshold()

        path = tmp_path / "pipeline.npz"
        save_pipeline(pipe, path)
        restored = load_pipeline(path, small_trace, CONFIG)

        assert restored.identification_threshold == \
            pipe.identification_threshold
        np.testing.assert_array_equal(restored.relevant, pipe.relevant)
        assert len(restored.known) == len(pipe.known)
        for a, b in zip(restored.known, pipe.known):
            assert a.label == b.label
            np.testing.assert_array_equal(a.quantile_window,
                                          b.quantile_window)

        target = crises[4]
        seq_original = pipe.identify(target).sequence
        seq_restored = restored.identify(target).sequence
        assert seq_original == seq_restored

        # The restored pipeline keeps *learning* identically too.
        pipe.observe(target)
        restored.observe(target)
        pipe.refresh(target.detected_epoch)
        restored.refresh(target.detected_epoch)
        np.testing.assert_array_equal(pipe.relevant, restored.relevant)


class TestCorruptCheckpoints:
    """Damaged archives raise *typed* errors, never raw KeyError/struct.

    This is the restore half of the serving tier's durability story: a
    torn or garbage checkpoint must be distinguishable from "no
    checkpoint yet" (FileNotFoundError) and from a programming error, so
    the supervisor can fall back to pure journal replay.
    """

    @pytest.fixture
    def saved(self, tmp_path):
        monitor = StreamingCrisisMonitor(n_metrics=4, relevant_metrics=[0, 1])
        path = tmp_path / "monitor.npz"
        save_monitor(monitor, path, extra={"applied_seq": 7})
        return path

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_monitor(tmp_path / "never-written.npz")

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.9])
    def test_truncated_archive_is_typed(self, saved, keep_fraction):
        data = saved.read_bytes()
        saved.write_bytes(data[: int(len(data) * keep_fraction)])
        with pytest.raises(CheckpointCorruptError):
            load_monitor(saved)

    def test_garbage_bytes_are_typed(self, saved):
        saved.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointCorruptError):
            load_monitor(saved)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_extra(saved)

    def test_flipped_byte_never_raises_raw_error(self, saved):
        # Damage a byte at every 64-byte stride; whatever breaks must
        # surface as the typed hierarchy (or load fine, for bytes that
        # happen to sit in zip padding).
        pristine = saved.read_bytes()
        for offset in range(0, len(pristine), 64):
            data = bytearray(pristine)
            data[offset] ^= 0xFF
            saved.write_bytes(bytes(data))
            try:
                load_monitor(saved)
            except CheckpointError:
                pass  # typed — exactly what recovery code catches

    def test_archive_without_header_is_typed(self, saved):
        with open(saved, "wb") as fh:
            np.savez(fh, not_a_header=np.zeros(3))
        with pytest.raises(CheckpointCorruptError):
            load_monitor(saved)

    def test_header_not_json_is_typed(self, saved):
        with open(saved, "wb") as fh:
            np.savez(fh, header=np.frombuffer(b"{broken", dtype=np.uint8))
        with pytest.raises(CheckpointCorruptError):
            load_monitor(saved)

    def test_unsupported_version_is_format_error(self, saved):
        from repro.core.atomicio import pack_header

        with open(saved, "wb") as fh:
            np.savez(fh, header=pack_header(
                {"format_version": 999, "kind": "monitor"}
            ))
        with pytest.raises(CheckpointFormatError):
            load_monitor(saved)

    def test_wrong_kind_is_format_error(self, saved):
        # A monitor archive offered where a pipeline is expected.
        with pytest.raises(CheckpointFormatError):
            read_checkpoint_extra(saved, expected_kind="pipeline")

    def test_intact_extra_round_trips(self, saved):
        assert read_checkpoint_extra(saved) == {"applied_seq": 7}
