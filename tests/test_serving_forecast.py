"""Forecast engines behind the serving front door.

The acceptance bar for the serving wiring: a tenant that opted into
forecasting embeds the engine's state in its checkpoints, recovery
re-attaches it **bit-identically**, the ``forecasts`` wire op exposes a
read-side view, and pre-forecast tenants are unaffected.
"""

import numpy as np
import pytest

from repro.config import ForecastConfig, ServingConfig
from repro.serving import wire
from repro.serving.tenant import TenantRuntime


def fc_cfg(**over):
    base = dict(
        n_metrics=4, n_relevant=2, epoch_minutes=144,  # 10 epochs/day
        window_days=2, threshold_refresh_epochs=4, min_history_epochs=6,
        checkpoint_every_epochs=100,  # explicit checkpoints only
        forecast_enabled=True,
        forecast=ForecastConfig(slope_window=4, churn_window=3),
        seed=11,
    )
    base.update(over)
    return ServingConfig(**base)


def drive(rt, start, end, n_machines=5):
    for epoch in range(start, end):
        for m in range(n_machines):
            rec = {
                "op": "report", "machine": f"m{m}", "epoch": epoch,
                "values": [float(epoch % 7 + m), float(m), 1.0, 2.0],
                "violation": False,
            }
            rt.journal.append(rec)
            rt.apply(rec)
        rec = {"op": "close_epoch", "epoch": epoch}
        rt.journal.append(rec)
        rt.apply(rec)


class TestTenantWiring:
    def test_opt_in_attaches_engine(self, tmp_path):
        rt = TenantRuntime("t", fc_cfg(), tmp_path)
        assert rt.monitor.forecast is not None
        rt.close()

    def test_opt_out_stays_bare(self, tmp_path):
        rt = TenantRuntime("t", fc_cfg(forecast_enabled=False), tmp_path)
        assert rt.monitor.forecast is None
        assert rt.forecasts()["forecast"] is None
        rt.close()

    def test_engine_observes_served_epochs(self, tmp_path):
        rt = TenantRuntime("t", fc_cfg(), tmp_path)
        drive(rt, 0, 12)
        assert rt.monitor.forecast.epochs_observed == 12
        rt.close()

    def test_forecasts_view_is_wire_safe(self, tmp_path):
        import json

        rt = TenantRuntime("t", fc_cfg(), tmp_path)
        drive(rt, 0, 8)
        view = rt.forecasts()
        assert view["tenant"] == "t"
        assert view["forecast"]["attached"] is True
        assert view["forecast"]["epochs_observed"] == 8
        assert view["alarms"] == []
        json.dumps(view)
        rt.close()


class TestRestartBitIdentity:
    def test_recovered_forecast_state_is_bit_identical(self, tmp_path):
        cfg = fc_cfg()
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 0, 10)
        rt.checkpoint()
        drive(rt, 10, 14)  # journal suffix past the checkpoint
        rt.close()

        recovered = TenantRuntime.recover("t", cfg, tmp_path)
        live = rt.monitor.forecast
        clone = recovered.monitor.forecast
        assert clone is not None
        assert clone.epochs_observed == live.epochs_observed

        h1, a1 = live.snapshot(prefix="x_")
        h2, a2 = clone.snapshot(prefix="x_")
        assert h1 == h2
        assert sorted(a1) == sorted(a2)
        for key in a1:
            assert np.array_equal(a1[key], a2[key], equal_nan=True), key
        recovered.close()

    def test_recovery_continues_identically(self, tmp_path):
        cfg = fc_cfg()
        rt = TenantRuntime("t", cfg, tmp_path)
        drive(rt, 0, 10)
        rt.checkpoint()
        recovered = TenantRuntime.recover("t", cfg, tmp_path)
        drive(rt, 10, 13)
        drive(recovered, 10, 13)
        f1 = rt.monitor.forecast.last_features
        f2 = recovered.monitor.forecast.last_features
        if f1 is None:
            assert f2 is None
        else:
            assert np.array_equal(f1, f2, equal_nan=True)
        rt.close()
        recovered.close()

    def test_pre_forecast_checkpoint_upgrades_cleanly(self, tmp_path):
        """A tenant that enables forecasting later starts fresh."""
        off = fc_cfg(forecast_enabled=False)
        rt = TenantRuntime("t", off, tmp_path)
        drive(rt, 0, 8)
        rt.checkpoint()
        rt.close()
        on = fc_cfg()
        recovered = TenantRuntime.recover("t", on, tmp_path)
        engine = recovered.monitor.forecast
        assert engine is not None
        assert engine.epochs_observed == 0  # fresh: no state to restore
        drive(recovered, 8, 10)
        assert engine.epochs_observed == 2
        recovered.close()


class TestWire:
    def test_forecasts_op_parses(self):
        req = wire.parse_request({"op": "forecasts", "tenant": "t"})
        assert req == {"op": "forecasts", "tenant": "t"}

    def test_forecasts_requires_tenant(self):
        with pytest.raises(wire.MalformedFrame):
            wire.parse_request({"op": "forecasts"})

    def test_forecasts_in_ops(self):
        assert "forecasts" in wire.OPS
