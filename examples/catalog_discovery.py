"""Bootstrapping a crisis catalog from undiagnosed history.

The paper's method needs past crises, but its bootstrap period contains
twenty crises nobody labeled.  This example shows how an adopting team
mines that history: cluster the undiagnosed crises by fingerprint
distance, review each proposed group once, and label clusters instead of
incidents.  Ground-truth types (which the simulator knows) measure how
pure the proposed catalog is.

    python examples/catalog_discovery.py
"""

from collections import Counter

from repro import DatacenterSimulator, SimulationConfig
from repro.extensions import catalog_summary, cluster_crises, cluster_purity
from repro.methods import FingerprintMethod

SIM = SimulationConfig(
    n_machines=40,
    seed=7,
    warmup_days=35,
    bootstrap_days=90,
    labeled_days=90,
    n_bootstrap_crises=14,
)


def main() -> None:
    print("generating trace...")
    trace = DatacenterSimulator(SIM).run()

    # Fit thresholds/relevant metrics offline on the labeled period; the
    # clustering target is the *bootstrap* crises, which carry no labels
    # as far as the method is concerned.
    method = FingerprintMethod()
    method.fit(trace, trace.labeled_crises)
    bootstrap = trace.bootstrap_crises
    print(f"{len(bootstrap)} undiagnosed bootstrap crises")

    vectors = [method.vector(c) for c in bootstrap]
    truth = [c.label for c in bootstrap]  # hidden from the method

    # Complete linkage with a cutoff near the identification threshold:
    # every within-cluster pair would also match under the identifier.
    clusters = cluster_crises(vectors, threshold=2.0, linkage="complete")
    purity = cluster_purity(clusters, truth)

    print(f"\nproposed catalog: {len(clusters)} entries "
          f"(purity vs hidden ground truth: {purity:.0%})")
    for row in catalog_summary(clusters, truth):
        members = clusters[row['cluster']].members
        print(
            f"  entry {row['cluster']}: {row['size']} crises "
            f"(medoid crisis {bootstrap[row['medoid']].index}) "
            f"— true types {row['true_labels']}"
        )

    counts = Counter(truth)
    print("\nhidden ground-truth distribution:",
          dict(sorted(counts.items())))
    print(
        "\nOperators label each entry once (inspecting the medoid's "
        "fingerprint)\ninstead of diagnosing every incident separately."
    )


if __name__ == "__main__":
    main()
