"""Advisory mode: the paper's pilot-program workflow, end to end.

The paper closes with a pilot program running fingerprints "in advisory
mode with live data": each detected crisis is identified against the
incident knowledge base, and operators either get the remedy that worked
last time or are told the crisis is new.  This example runs that loop —
including the incident database, remedies, and JSON persistence.

    python examples/advisory_mode.py
"""

import tempfile
from pathlib import Path

from repro import (
    DatacenterSimulator,
    FingerprintingConfig,
    FingerprintPipeline,
    SelectionConfig,
    SimulationConfig,
    ThresholdConfig,
)
from repro.incidents import CrisisAdvisor, IncidentDatabase

REMEDIES = {
    "A": "enable front-end admission control; add front-end capacity",
    "B": "page downstream DC; throttle archival stream until drained",
    "C": "roll back database configuration push",
    "D": "roll back front-end configuration push",
    "E": "roll back post-processing configuration push",
    "F": "roll back runtime upgrade; restart workers",
    "G": "restart middle tier; clear lock table",
    "H": "fix request router weights; rebalance",
    "I": "staged power-on; verify cooling before ramping traffic",
    "J": "shed load; scale out until spike passes",
}


def main() -> None:
    print("generating trace...")
    trace = DatacenterSimulator(
        SimulationConfig(
            n_machines=40,
            seed=7,
            warmup_days=35,
            bootstrap_days=60,
            labeled_days=90,
            n_bootstrap_crises=10,
        )
    ).run()

    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=30),
        thresholds=ThresholdConfig(window_days=30),
    )
    pipeline = FingerprintPipeline(trace, config)
    advisor = CrisisAdvisor(pipeline, IncidentDatabase())

    retrieved = 0
    new_incidents = 0
    for crisis in trace.detected_crises:
        pipeline.observe(crisis)
        pipeline.refresh(crisis.detected_epoch)
        pipeline.update_identification_threshold()
        if len(advisor.database):
            advisor.refingerprint_database()

        if pipeline.identification_threshold is not None:
            advice = advisor.advise(crisis)
            if advice.matched and advice.remedy:
                retrieved += 1
                print(
                    f"crisis {crisis.index:3d}: matched type "
                    f"{advice.label} -> remedy: {advice.remedy}"
                )
            else:
                new_incidents += 1
                print(
                    f"crisis {crisis.index:3d}: no confident match "
                    f"(sequence {' '.join(advice.sequence)}) — "
                    f"starting fresh diagnosis"
                )
        # Operators diagnose the crisis after the fact and file the remedy.
        advisor.record_diagnosis(
            crisis,
            crisis.label,
            diagnosis=f"type {crisis.label}",
            remedy=REMEDIES[crisis.label],
        )

    print(f"\nremedies retrieved automatically: {retrieved}")
    print(f"fresh diagnoses needed:          {new_incidents}")

    # The knowledge base persists across restarts.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "incidents.json"
        advisor.database.save(path)
        from repro.incidents import IncidentDatabase as DB

        reloaded = DB.load(path)
        print(
            f"\nknowledge base saved and reloaded: {len(reloaded)} "
            f"incidents, latest remedy for B: "
            f"{reloaded.by_label('B')[-1].remedy!r}"
        )


if __name__ == "__main__":
    main()
