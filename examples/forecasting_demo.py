"""Crisis forecasting and evolution tracking (the paper's future work).

Section 7 sketches two extensions this library implements:

1. forecasting crises from early fingerprint signs (the paper saw
   encouraging results for type-B crises, whose downstream backlog builds
   gradually before the SLA detector fires);
2. modeling crisis evolution so operators can track repair progress.

    python examples/forecasting_demo.py
"""

from repro import DatacenterSimulator, SimulationConfig
from repro.extensions import CrisisEvolutionModel, CrisisForecaster
from repro.methods import FingerprintMethod

SIM = SimulationConfig(
    n_machines=40,
    seed=7,
    warmup_days=35,
    bootstrap_days=60,
    labeled_days=90,
    n_bootstrap_crises=10,
)


def main() -> None:
    print("generating trace...")
    trace = DatacenterSimulator(SIM).run()
    crises = trace.labeled_crises

    method = FingerprintMethod()
    method.fit(trace, crises)

    # --- forecasting -----------------------------------------------------
    # Train on the first 12 labeled crises, evaluate on the rest; type B
    # (backlog from the downstream datacenter) is the forecastable type.
    train, test = crises[:12], crises[12:]
    forecaster = CrisisForecaster(
        trace, method.thresholds, method.relevant,
        lead_epochs=1, window_epochs=3,
    ).fit(train)
    threshold = forecaster.calibrate_threshold()

    result = forecaster.evaluate(test, threshold=threshold)
    print("\nforecasting (early signs, all types):")
    print(f"  crises forecast: {result.recall:.0%} of {result.n_crises}")
    print(f"  false alarms on normal epochs: {result.false_alarm_rate:.1%}")

    test_b = [c for c in test if c.label == "B"]
    if test_b:
        result_b = forecaster.evaluate(test_b, threshold=threshold)
        print(f"  type-B crises forecast: {result_b.recall:.0%} "
              f"of {result_b.n_crises} (the paper's encouraging case)")

    # --- evolution tracking ------------------------------------------------
    model = CrisisEvolutionModel(
        trace, method.thresholds, method.relevant
    ).fit(train)
    print("\nevolution profiles (mean fingerprint magnitude by epoch):")
    for label, profile in sorted(model.profiles.items()):
        mags = " ".join(
            f"{m:4.1f}" for m in profile.magnitudes[:8] if m == m
        )
        print(f"  type {label} (n={profile.n_crises}, "
              f"mean duration {profile.mean_duration_epochs:.1f} epochs): "
              f"{mags}")

    live = next(c for c in test if c.label in model.profiles)
    print(f"\nlive progress of crisis {live.index} (type {live.label}):")
    for elapsed in (0, 2, 4):
        report = model.progress(live, live.label, elapsed)
        print(
            f"  after {elapsed} epochs: "
            f"{report['fraction_elapsed']:.0%} of expected duration, "
            f"~{report['expected_remaining_epochs']:.1f} epochs remaining, "
            f"magnitude at {report['magnitude_ratio']:.0%} of peak"
        )


if __name__ == "__main__":
    main()
