"""Scaling the summarization: streaming quantiles for very large fleets.

Section 3.2 notes that as the datacenter grows, metric quantiles can be
estimated from a stream with bounded error instead of exactly.  This
example compares exact quantiles against the Greenwald-Khanna sketch and
the P-square estimator on a simulated large fleet, showing that the
fingerprint input changes negligibly while memory stays sublinear.

    python examples/streaming_quantiles.py
"""

import numpy as np

from repro.telemetry.quantiles import empirical_quantiles
from repro.telemetry.sketches import GKQuantileSketch, P2QuantileEstimator

QUANTILES = (0.25, 0.50, 0.95)


def main() -> None:
    rng = np.random.default_rng(42)
    n_machines = 20000  # a fleet far larger than the paper's datacenter

    # One epoch of one metric across the whole fleet: lognormal latencies
    # with a heavy tail, the hard case for quantile estimation.
    samples = rng.lognormal(3.0, 0.6, n_machines)

    exact = empirical_quantiles(samples, QUANTILES)
    print(f"fleet of {n_machines} machines, one metric, one epoch")
    print(f"exact quantiles (25/50/95): "
          f"{exact[0]:.2f} / {exact[1]:.2f} / {exact[2]:.2f}")

    sketch = GKQuantileSketch(eps=0.01)
    for x in samples:
        sketch.insert(x)
    gk = [sketch.query(q) for q in QUANTILES]
    print("\nGreenwald-Khanna sketch (eps=1%):")
    print(f"  estimates: {gk[0]:.2f} / {gk[1]:.2f} / {gk[2]:.2f}")
    print(f"  relative errors: "
          + " / ".join(f"{abs(e - t) / t:.2%}" for e, t in zip(gk, exact)))
    print(f"  tuples stored: {sketch.size} "
          f"({sketch.size / n_machines:.2%} of the stream)")

    print("\nP-square estimators (constant space, one per quantile):")
    for q, truth in zip(QUANTILES, exact):
        est = P2QuantileEstimator(q)
        est.extend(samples)
        value = est.query()
        print(f"  q={q:.2f}: {value:.2f} "
              f"(error {abs(value - truth) / truth:.2%}, 5 markers)")

    print("\nThe fingerprint consumes only these quantiles, so its size and "
          "accuracy\nare unchanged whether the fleet has 200 machines or "
          "20000.")


if __name__ == "__main__":
    main()
