"""Post-mortem analysis: render fingerprints and compare crises (Figure 1).

After an incident, operators want to see *what* the fingerprint captured
and whether the crisis matches anything in the incident database.  This
example renders fingerprint heatmaps like the paper's Figure 1 (rows are
epochs, columns are metric quantiles; '#' hot, '.' cold) and prints the
pairwise distance structure of the crisis catalog.

    python examples/crisis_postmortem.py
"""

import numpy as np

from repro import DatacenterSimulator, SimulationConfig
from repro.core.summary import summary_vectors
from repro.methods import FingerprintMethod
from repro.viz import render_fingerprint

SIM = SimulationConfig(
    n_machines=40,
    seed=7,
    warmup_days=35,
    bootstrap_days=60,
    labeled_days=90,
    n_bootstrap_crises=10,
)


def main() -> None:
    print("generating trace...")
    trace = DatacenterSimulator(SIM).run()
    crises = trace.labeled_crises

    # Offline fit: thresholds over all crisis-free data, relevant metrics
    # from all labeled crises (the post-mortem has full hindsight).
    method = FingerprintMethod()
    method.fit(trace, crises)
    names = [trace.metric_names[i] for i in method.relevant]
    print(f"relevant metrics ({len(names)}): {', '.join(names)}")

    # Render one crisis of each of four types, as in Figure 1.
    shown = set()
    for crisis in crises:
        if crisis.label in shown or crisis.label not in "BCD":
            continue
        shown.add(crisis.label)
        det = crisis.detected_epoch
        window = trace.quantiles[det - 2 : det + 5]
        summaries = summary_vectors(window, method.thresholds)
        sub = summaries[:, method.relevant, :]
        flat = sub.reshape(sub.shape[0], -1)
        print()
        print(
            render_fingerprint(
                flat,
                title=f"crisis {crisis.index} — type {crisis.label} "
                f"({crisis.instance.duration_epochs} epochs)",
            )
        )

    # Pairwise distances: same-type crises should be close.
    print("\npairwise fingerprint distances (labels on both axes):")
    labels = [c.label for c in crises]
    D = method.distance_matrix(crises)
    header = "    " + " ".join(f"{l:>4s}" for l in labels)
    print(header)
    for i, row in enumerate(D):
        cells = " ".join(f"{d:4.1f}" for d in row)
        print(f"  {labels[i]:>2s} {cells}")

    same = [D[i, j] for i in range(len(crises)) for j in range(i + 1, len(crises))
            if labels[i] == labels[j]]
    diff = [D[i, j] for i in range(len(crises)) for j in range(i + 1, len(crises))
            if labels[i] != labels[j]]
    print(f"\nmean same-type distance:     {np.mean(same):.2f}")
    print(f"mean different-type distance: {np.mean(diff):.2f}")


if __name__ == "__main__":
    main()
