"""Quickstart: simulate a datacenter, fingerprint its crises, identify them.

Runs a small eight-month datacenter simulation (bootstrap period with
undiagnosed crises, then a labeled period), deploys the online
fingerprinting pipeline exactly as an operator would, and prints the
five-epoch identification sequence for every crisis.

    python examples/quickstart.py
"""

from repro import (
    DatacenterSimulator,
    FingerprintingConfig,
    FingerprintPipeline,
    SelectionConfig,
    SimulationConfig,
    ThresholdConfig,
)
from repro.core.identification import is_stable, sequence_label


def main() -> None:
    # A scaled-down datacenter: 40 machines, ~100 metrics each, 15-minute
    # epochs.  The paper's installation had hundreds of machines — the
    # fingerprint representation is the same size either way.
    sim_config = SimulationConfig(
        n_machines=40,
        seed=7,
        warmup_days=35,
        bootstrap_days=60,
        labeled_days=90,
        n_bootstrap_crises=10,
    )
    print("generating trace...")
    trace = DatacenterSimulator(sim_config).run()
    print(
        f"  {trace.n_epochs} epochs, {trace.n_metrics} metrics, "
        f"{len(trace.detected_crises)} detected crises"
    )
    print(f"  KPIs: {', '.join(trace.kpi_names)}")

    # Method parameters: 30 relevant metrics (the paper's online setting),
    # 30-day hot/cold threshold window (this short trace has no 240 days
    # of history; the full benchmarks use the paper's 240).
    config = FingerprintingConfig(
        selection=SelectionConfig(n_relevant=30),
        thresholds=ThresholdConfig(window_days=30),
    )
    pipeline = FingerprintPipeline(trace, config)

    correct = 0
    attempted = 0
    print("\nonline crisis identification:")
    for crisis in trace.detected_crises:
        pipeline.observe(crisis)  # feature selection (needs no diagnosis)
        pipeline.refresh(crisis.detected_epoch)
        pipeline.update_identification_threshold()

        if pipeline.identification_threshold is not None:
            known = {k.label for k in pipeline.known}
            outcome = pipeline.identify(crisis)
            seq = outcome.sequence
            stable = is_stable(seq)
            settled = sequence_label(seq) if stable else None
            if crisis.label in known:
                ok = settled == crisis.label
            else:
                ok = stable and settled is None
            attempted += 1
            correct += ok
            status = "OK " if ok else "MISS"
            print(
                f"  [{status}] crisis {crisis.index:2d} type {crisis.label} "
                f"({'known' if crisis.label in known else 'new'}): "
                f"{' '.join(seq)}"
            )
        # The operators diagnose the crisis afterwards; store it.
        pipeline.confirm(crisis)

    print(f"\naccuracy: {correct}/{attempted} "
          f"({100.0 * correct / max(attempted, 1):.0f}%)")


if __name__ == "__main__":
    main()
