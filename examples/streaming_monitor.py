"""Running the method as a live service: collector + streaming monitor.

The other examples replay recorded traces; this one wires the pieces a
real deployment uses — per-machine agents feeding an epoch aggregator,
whose summaries stream into :class:`StreamingCrisisMonitor`.  Events are
printed as they happen; operators diagnose crises after they end and the
monitor starts recognizing repeats.

    python examples/streaming_monitor.py
"""

from repro import DatacenterSimulator, SimulationConfig
from repro.config import (
    FingerprintingConfig,
    SelectionConfig,
    ThresholdConfig,
)
from repro.core.streaming import (
    CrisisDetected,
    CrisisEnded,
    IdentificationUpdate,
    StreamingCrisisMonitor,
)
from repro.methods import FingerprintMethod

SIM = SimulationConfig(
    n_machines=40,
    seed=7,
    warmup_days=35,
    bootstrap_days=60,
    labeled_days=90,
    n_bootstrap_crises=10,
)
CONFIG = FingerprintingConfig(
    selection=SelectionConfig(n_relevant=30),
    thresholds=ThresholdConfig(window_days=30),
)


def main() -> None:
    # In production the quantile stream comes from
    # repro.telemetry.collector; here the simulator plays the datacenter
    # and we replay its per-epoch summaries as if they were live.
    print("generating trace (stands in for the live datacenter)...")
    trace = DatacenterSimulator(SIM).run()

    # Relevant metrics come from offline analysis of past incidents.
    method = FingerprintMethod(CONFIG)
    method.fit(trace, trace.labeled_crises)

    monitor = StreamingCrisisMonitor(
        n_metrics=trace.n_metrics,
        relevant_metrics=method.relevant,
        config=CONFIG,
        threshold_refresh_epochs=96,
        min_history_epochs=96 * 14,
    )

    # Ground truth the "operators" use to diagnose ended crises.
    def true_label(epoch: int):
        for c in trace.crises:
            if c.instance.start_epoch - 4 <= epoch \
                    <= c.instance.end_epoch + 8:
                return c.label
        return None

    frac = trace.kpi_violation_fraction.max(axis=1)
    n_detected = n_recognized = 0
    for epoch in range(trace.n_epochs):
        events = monitor.ingest(trace.quantiles[epoch], float(frac[epoch]))
        for event in events:
            if isinstance(event, CrisisDetected):
                n_detected += 1
                day = epoch // 96
                print(f"[day {day:3d}] crisis #{event.crisis_number} "
                      f"DETECTED")
            elif isinstance(event, IdentificationUpdate):
                if event.identification_epoch == 4 or event.label != "x":
                    print(
                        f"          id epoch {event.identification_epoch}:"
                        f" {event.label}"
                        + (f" (distance {event.distance:.2f})"
                           if event.distance is not None else "")
                    )
                if event.label != "x":
                    n_recognized += 1
            elif isinstance(event, CrisisEnded):
                label = true_label(event.epoch)
                if label:
                    monitor.diagnose(event.crisis_number, label)
                print(
                    f"          ended after "
                    f"{event.duration_epochs} epochs; diagnosed as "
                    f"{label or 'unknown'}"
                )

    print(f"\ncrises detected: {n_detected}")
    print(f"identification updates with a label: {n_recognized}")
    print("library labels:", monitor.library_labels)


if __name__ == "__main__":
    main()
